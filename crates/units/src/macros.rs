//! Internal macro that defines an `f64`-backed physical-quantity newtype.
//!
//! Every generated type gets:
//! * `new` / `value` (C-CTOR, C-GETTER),
//! * the common traits (`Copy`, `Clone`, `PartialEq`, `PartialOrd`, `Debug`,
//!   `Display`, `Default`) per C-COMMON-TRAITS,
//! * same-type `Add`/`Sub` and scalar `Mul`/`Div` (C-OVERLOAD: only the
//!   operations that make dimensional sense),
//! * `serde` `Serialize`/`Deserialize` as a transparent `f64` (C-SERDE),
//! * `From<f64>` / conversion back via `value()`.

/// Defines an `f64` newtype quantity with unit-suffixed `Display`.
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $suffix:literal
    ) => {
        $(#[$meta])*
        #[derive(
            Debug,
            Clone,
            Copy,
            PartialEq,
            PartialOrd,
            Default,
            serde::Serialize,
            serde::Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a new quantity from a raw value expressed in the
            /// type's base unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in the type's base unit.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` if the underlying value is finite (neither NaN
            /// nor infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the smaller of two quantities.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of two quantities.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Absolute value of the quantity.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "{} {}", self.0, $suffix)
            }
        }

        impl From<f64> for $name {
            #[inline]
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}
