//! Validation error types shared across the toolchain.

use core::fmt;

/// Error returned when a scalar argument falls outside its documented range.
///
/// Model constructors throughout the toolchain validate their arguments
/// (C-VALIDATE) and report violations with this type so that callers get a
/// uniform, descriptive message.
///
/// # Example
///
/// ```
/// use vcsel_units::OutOfRangeError;
///
/// let err = OutOfRangeError::new("heater power", -1.0, 0.0, f64::INFINITY);
/// assert!(err.to_string().contains("heater power"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OutOfRangeError {
    what: &'static str,
    got: f64,
    min: f64,
    max: f64,
}

impl OutOfRangeError {
    /// Creates a new range-violation error for the parameter `what`.
    pub fn new(what: &'static str, got: f64, min: f64, max: f64) -> Self {
        Self { what, got, min, max }
    }

    /// Name of the offending parameter.
    pub fn what(&self) -> &'static str {
        self.what
    }

    /// The rejected value.
    pub fn got(&self) -> f64 {
        self.got
    }

    /// Inclusive lower bound of the accepted range.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Inclusive upper bound of the accepted range.
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl fmt::Display for OutOfRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} out of range: got {}, expected within [{}, {}]",
            self.what, self.got, self.min, self.max
        )
    }
}

impl std::error::Error for OutOfRangeError {}

/// Error returned when a scalar argument is NaN or infinite.
///
/// # Example
///
/// ```
/// use vcsel_units::NonFiniteError;
///
/// let err = NonFiniteError::new("thermal conductivity");
/// assert_eq!(err.to_string(), "thermal conductivity must be finite");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonFiniteError {
    what: &'static str,
}

impl NonFiniteError {
    /// Creates a new non-finite-value error for the parameter `what`.
    pub fn new(what: &'static str) -> Self {
        Self { what }
    }

    /// Name of the offending parameter.
    pub fn what(&self) -> &'static str {
        self.what
    }
}

impl fmt::Display for NonFiniteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} must be finite", self.what)
    }
}

impl std::error::Error for NonFiniteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_display_mentions_all_parts() {
        let err = OutOfRangeError::new("current", 20.0, 0.0, 15.0);
        let msg = err.to_string();
        assert!(msg.contains("current"));
        assert!(msg.contains("20"));
        assert!(msg.contains("15"));
        assert_eq!(err.what(), "current");
        assert_eq!(err.got(), 20.0);
        assert_eq!(err.min(), 0.0);
        assert_eq!(err.max(), 15.0);
    }

    #[test]
    fn errors_implement_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<OutOfRangeError>();
        assert_error::<NonFiniteError>();
    }
}
