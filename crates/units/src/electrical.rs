//! Electrical quantities for the VCSEL drive circuit.

quantity!(
    /// Electric current in amperes.
    ///
    /// VCSEL modulation currents in the paper range over 0–15 mA
    /// (Figure 8-b), so a milliampere constructor is provided.
    ///
    /// # Example
    ///
    /// ```
    /// use vcsel_units::Amperes;
    ///
    /// let bias = Amperes::from_milliamperes(5.0);
    /// assert!((bias.as_milliamperes() - 5.0).abs() < 1e-12);
    /// ```
    Amperes,
    "A"
);

quantity!(
    /// Electric potential in volts (VCSEL junction + series voltage).
    Volts,
    "V"
);

impl Amperes {
    /// Creates a current from milliamperes.
    #[inline]
    pub const fn from_milliamperes(ma: f64) -> Self {
        Self::new(ma * 1e-3)
    }

    /// Current expressed in milliamperes.
    #[inline]
    pub fn as_milliamperes(self) -> f64 {
        self.value() * 1e3
    }

    /// Electrical power `V * I`.
    #[inline]
    pub fn power(self, voltage: Volts) -> crate::Watts {
        crate::Watts::new(self.value() * voltage.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn milliampere_round_trip() {
        let i = Amperes::from_milliamperes(12.0);
        assert!((i.value() - 12e-3).abs() < 1e-15);
        assert!((i.as_milliamperes() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn electrical_power() {
        // 2 V * 3 mA = 6 mW
        let p = Amperes::from_milliamperes(3.0).power(Volts::new(2.0));
        assert!((p.as_milliwatts() - 6.0).abs() < 1e-12);
    }
}
