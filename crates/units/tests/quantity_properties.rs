//! Property tests on the quantity newtypes: the arithmetic must behave
//! exactly like the underlying f64 (no surprises hidden in the wrappers).

use proptest::prelude::*;
use vcsel_units::{Celsius, Decibels, Meters, TemperatureDelta, Watts};

proptest! {
    #[test]
    fn addition_is_commutative(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let x = Meters::new(a);
        let y = Meters::new(b);
        prop_assert_eq!((x + y).value(), (y + x).value());
    }

    #[test]
    fn add_sub_round_trip(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let x = Watts::new(a);
        let y = Watts::new(b);
        prop_assert!(((x + y - y).value() - a).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0));
    }

    #[test]
    fn scalar_mul_distributes(a in -1e3f64..1e3, b in -1e3f64..1e3, s in -1e3f64..1e3) {
        let x = Watts::new(a);
        let y = Watts::new(b);
        let lhs = (x + y) * s;
        let rhs = x * s + y * s;
        prop_assert!((lhs.value() - rhs.value()).abs() <= 1e-6 * lhs.value().abs().max(1.0));
    }

    #[test]
    fn ordering_matches_f64(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        prop_assert_eq!(Celsius::new(a) < Celsius::new(b), a < b);
        prop_assert_eq!(Celsius::new(a).max(Celsius::new(b)).value(), a.max(b));
        prop_assert_eq!(Celsius::new(a).min(Celsius::new(b)).value(), a.min(b));
    }

    #[test]
    fn temperature_delta_round_trip(base in -50.0f64..150.0, d in -100.0f64..100.0) {
        let t = Celsius::new(base);
        let dt = TemperatureDelta::new(d);
        let back = (t + dt).delta_from(t);
        prop_assert!((back.value() - d).abs() < 1e-9);
    }

    #[test]
    fn attenuation_never_amplifies(p_mw in 0.0f64..100.0, loss_db in 0.0f64..60.0) {
        let p = Watts::from_milliwatts(p_mw);
        let out = p.attenuate(Decibels::new(loss_db));
        prop_assert!(out.value() <= p.value() * (1.0 + 1e-12));
        prop_assert!(out.value() >= 0.0);
    }

    #[test]
    fn attenuation_composes(p_mw in 0.01f64..100.0, a in 0.0f64..30.0, b in 0.0f64..30.0) {
        let p = Watts::from_milliwatts(p_mw);
        let seq = p.attenuate(Decibels::new(a)).attenuate(Decibels::new(b));
        let once = p.attenuate(Decibels::new(a + b));
        prop_assert!((seq.value() - once.value()).abs() <= 1e-12 * once.value().max(1e-30));
    }

    #[test]
    fn dbm_round_trip(p_mw in 1e-6f64..1e3) {
        let p = Watts::from_milliwatts(p_mw);
        let back = p.to_dbm().to_watts();
        prop_assert!((back.value() - p.value()).abs() <= 1e-9 * p.value());
    }

    #[test]
    fn kelvin_round_trip(t in -273.0f64..1000.0) {
        let c = Celsius::new(t);
        prop_assert!((Celsius::from_kelvin(c.as_kelvin()).value() - t).abs() < 1e-9);
    }

    #[test]
    fn unit_conversions_round_trip(v in 1e-9f64..1e3) {
        prop_assert!((Meters::from_millimeters(v).as_millimeters() - v).abs() <= 1e-12 * v);
        prop_assert!((Meters::from_micrometers(v).as_micrometers() - v).abs() <= 1e-12 * v);
        prop_assert!((Watts::from_milliwatts(v).as_milliwatts() - v).abs() <= 1e-12 * v);
        prop_assert!((Watts::from_microwatts(v).as_microwatts() - v).abs() <= 1e-12 * v);
    }
}
