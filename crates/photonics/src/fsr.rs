//! Free-spectral-range model for microring resonators.
//!
//! A ring resonates at every wavelength for which an integer number of
//! guided wavelengths fits its circumference, so its comb of resonances
//! repeats with the free spectral range
//!
//! ```text
//! FSR = λ² / (n_g · L),      L = 2πR
//! ```
//!
//! The base [`MicroringResonator`](crate::MicroringResonator) model treats a
//! single resonance; that is exact as long as all channels live well inside
//! one FSR. The paper's ONI packs 16 channels around 1550 nm, and the
//! related job-allocation work it cites (\[14\], Zhang et al., DATE 2014)
//! reasons explicitly about the FSR — so this module provides:
//!
//! * [`RingGeometry`] — FSR, resonance order and comb positions from the
//!   physical ring (the paper's Ø10 µm ring gives FSR ≈ 17.6 nm),
//! * [`PeriodicRing`] — a microring whose response is the superposition of
//!   all comb orders: a signal one full FSR away is dropped *again*, which
//!   bounds how many wavelength channels one waveguide can carry.

use serde::{Deserialize, Serialize};
use vcsel_units::{Celsius, Meters, Nanometers};

use crate::{MicroringResonator, PhotonicsError};

/// Physical ring geometry, from which the free spectral range follows.
///
/// # Example
///
/// ```
/// use vcsel_photonics::RingGeometry;
/// use vcsel_units::{Meters, Nanometers};
///
/// // The paper's Ø10 µm microring, Si group index ≈ 4.3.
/// let g = RingGeometry::new(Meters::from_micrometers(5.0), 4.3)?;
/// let fsr = g.fsr(Nanometers::new(1550.0));
/// assert!(fsr.value() > 17.0 && fsr.value() < 18.5);
/// # Ok::<(), vcsel_photonics::PhotonicsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RingGeometry {
    /// Ring radius, m.
    radius_m: f64,
    /// Group index of the guided mode.
    group_index: f64,
}

impl RingGeometry {
    /// The paper's Figure 1-b ring: 10 µm diameter, silicon-wire group
    /// index 4.3 (typical 450 × 220 nm Si wire at 1550 nm).
    pub fn paper_default() -> Self {
        Self::new(Meters::from_micrometers(5.0), 4.3).expect("paper defaults are valid")
    }

    /// Creates a ring geometry.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::BadParameter`] for a non-positive radius or
    /// group index.
    pub fn new(radius: Meters, group_index: f64) -> Result<Self, PhotonicsError> {
        if !(radius.value() > 0.0) {
            return Err(PhotonicsError::BadParameter {
                reason: format!("ring radius must be positive, got {radius}"),
            });
        }
        if !(group_index > 0.0) || !group_index.is_finite() {
            return Err(PhotonicsError::BadParameter {
                reason: format!("group index must be positive, got {group_index}"),
            });
        }
        Ok(Self { radius_m: radius.value(), group_index })
    }

    /// Ring radius.
    pub fn radius(&self) -> Meters {
        Meters::new(self.radius_m)
    }

    /// Group index of the guided mode.
    pub fn group_index(&self) -> f64 {
        self.group_index
    }

    /// Ring circumference `L = 2πR`.
    pub fn circumference(&self) -> Meters {
        Meters::new(core::f64::consts::TAU * self.radius_m)
    }

    /// Free spectral range at wavelength `lambda`: `FSR = λ²/(n_g·L)`.
    pub fn fsr(&self, lambda: Nanometers) -> Nanometers {
        let l_nm = self.circumference().value() * 1e9;
        Nanometers::new(lambda.value() * lambda.value() / (self.group_index * l_nm))
    }

    /// Azimuthal resonance order nearest to `lambda` (the integer `m` in
    /// `m·λ = n_g·L`).
    pub fn resonance_order(&self, lambda: Nanometers) -> u32 {
        let l_nm = self.circumference().value() * 1e9;
        (self.group_index * l_nm / lambda.value()).round().max(1.0) as u32
    }

    /// How many channels of the given spacing fit inside one FSR — the
    /// hard upper bound on wavelength-division channels a passive ring
    /// filter bank can separate.
    pub fn max_channels(&self, lambda: Nanometers, spacing: Nanometers) -> usize {
        if !(spacing.value() > 0.0) {
            return 0;
        }
        (self.fsr(lambda).value() / spacing.value()).floor() as usize
    }
}

/// A microring whose drop response repeats every free spectral range.
///
/// Wraps a [`MicroringResonator`] (one Lorentzian line) and folds any
/// detuning into the principal interval `[−FSR/2, +FSR/2]`, so a signal one
/// full FSR away from the design resonance is dropped as if it were exactly
/// on resonance. This is what limits ORNoC channel counts: channel
/// wavelengths must all fall within one FSR of each other.
///
/// # Example
///
/// ```
/// use vcsel_photonics::{MicroringResonator, PeriodicRing, RingGeometry};
/// use vcsel_units::Nanometers;
///
/// let ring = PeriodicRing::new(
///     MicroringResonator::paper_default(Nanometers::new(1550.0)),
///     RingGeometry::paper_default(),
/// );
/// let fsr = ring.fsr();
/// // One whole FSR away: dropped again (aliasing), unlike the single-line model.
/// assert!(ring.drop_fraction(fsr) > 0.99);
/// // Half an FSR away: the most isolated a channel can be.
/// assert!(ring.drop_fraction(Nanometers::new(fsr.value() / 2.0)) < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodicRing {
    line: MicroringResonator,
    geometry: RingGeometry,
    fsr_nm: f64,
}

impl PeriodicRing {
    /// Combines a single-line ring model with its physical geometry.
    /// The FSR is evaluated at the line's design resonance.
    pub fn new(line: MicroringResonator, geometry: RingGeometry) -> Self {
        let fsr_nm = geometry.fsr(line.design_resonance()).value();
        Self { line, geometry, fsr_nm }
    }

    /// The underlying single-line model.
    pub fn line(&self) -> &MicroringResonator {
        &self.line
    }

    /// The ring geometry.
    pub fn geometry(&self) -> &RingGeometry {
        &self.geometry
    }

    /// Free spectral range at the design resonance.
    pub fn fsr(&self) -> Nanometers {
        Nanometers::new(self.fsr_nm)
    }

    /// Folds a detuning into the principal interval `[−FSR/2, +FSR/2]`.
    fn fold(&self, delta: Nanometers) -> Nanometers {
        let d = delta.value();
        let folded = d - self.fsr_nm * (d / self.fsr_nm).round();
        Nanometers::new(folded)
    }

    /// Drop fraction for a detuning from the *design* resonance, aliased
    /// over all comb orders.
    pub fn drop_fraction(&self, delta: Nanometers) -> f64 {
        self.line.drop_fraction(self.fold(delta))
    }

    /// Through fraction, aliased over all comb orders.
    pub fn through_fraction(&self, delta: Nanometers) -> f64 {
        self.line.through_fraction(self.fold(delta))
    }

    /// Drop fraction for a signal at `signal` wavelength with the ring at
    /// temperature `t` (thermal drift applied to every comb order alike).
    pub fn drop_fraction_at(&self, signal: Nanometers, t: Celsius) -> f64 {
        self.drop_fraction(signal - self.line.resonance_at(t))
    }

    /// Worst-case *adjacent-order* crosstalk for a channel plan spanning
    /// `span` of spectrum: the drop fraction seen by the channel closest to
    /// the next comb order, `FSR − span` away from this ring's resonance.
    ///
    /// Returns 1.0 when the plan is wider than the FSR (aliasing is
    /// unavoidable).
    pub fn adjacent_order_crosstalk(&self, span: Nanometers) -> f64 {
        if span.value() >= self.fsr_nm {
            return 1.0;
        }
        self.line.drop_fraction(Nanometers::new(self.fsr_nm - span.value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> PeriodicRing {
        PeriodicRing::new(
            MicroringResonator::paper_default(Nanometers::new(1550.0)),
            RingGeometry::paper_default(),
        )
    }

    #[test]
    fn paper_ring_fsr_matches_hand_calculation() {
        // FSR = λ²/(n_g·2πR) = 1550²/(4.3·2π·5000) nm ≈ 17.78 nm.
        let g = RingGeometry::paper_default();
        let fsr = g.fsr(Nanometers::new(1550.0));
        let by_hand = 1550.0f64.powi(2) / (4.3 * core::f64::consts::TAU * 5000.0);
        assert!((fsr.value() - by_hand).abs() < 1e-9, "fsr {fsr}");
        assert!(fsr.value() > 17.7 && fsr.value() < 17.9);
    }

    #[test]
    fn resonance_order_is_physical() {
        let g = RingGeometry::paper_default();
        let m = g.resonance_order(Nanometers::new(1550.0));
        // m = n_g·L/λ = 4.3·31416/1550 ≈ 87.
        assert_eq!(m, 87);
    }

    #[test]
    fn max_channels_counts_spacings() {
        let g = RingGeometry::paper_default();
        // 17.78 nm FSR / 1.0 nm spacing -> 17 channels.
        assert_eq!(g.max_channels(Nanometers::new(1550.0), Nanometers::new(1.0)), 17);
        assert_eq!(g.max_channels(Nanometers::new(1550.0), Nanometers::ZERO), 0);
    }

    #[test]
    fn folding_aliases_whole_fsr_to_resonance() {
        let r = ring();
        let fsr = r.fsr();
        for k in [-2.0, -1.0, 1.0, 2.0] {
            let d = Nanometers::new(k * fsr.value());
            assert!(r.drop_fraction(d) > 0.999, "order {k} should alias onto resonance");
        }
    }

    #[test]
    fn inside_principal_interval_matches_single_line() {
        let r = ring();
        for d in [0.0, 0.2, 0.775, 2.0, 5.0] {
            let delta = Nanometers::new(d);
            assert!(
                (r.drop_fraction(delta) - r.line().drop_fraction(delta)).abs() < 1e-12,
                "mismatch at {d} nm"
            );
        }
    }

    #[test]
    fn folding_is_symmetric_and_periodic() {
        let r = ring();
        let fsr = r.fsr().value();
        for d in [0.3, 1.1, 4.0, 8.0] {
            let a = r.drop_fraction(Nanometers::new(d));
            let b = r.drop_fraction(Nanometers::new(d + fsr));
            let c = r.drop_fraction(Nanometers::new(-d));
            assert!((a - b).abs() < 1e-9, "periodicity at {d}");
            assert!((a - c).abs() < 1e-12, "symmetry at {d}");
        }
    }

    #[test]
    fn adjacent_order_crosstalk_grows_with_span() {
        let r = ring();
        let narrow = r.adjacent_order_crosstalk(Nanometers::new(4.0));
        let wide = r.adjacent_order_crosstalk(Nanometers::new(15.0));
        assert!(narrow < wide, "wider plans sit closer to the next order");
        assert_eq!(r.adjacent_order_crosstalk(Nanometers::new(20.0)), 1.0);
    }

    #[test]
    fn thermal_drift_moves_the_whole_comb() {
        let r = ring();
        // Hot ring: resonance (and every order) red-shifts; a signal at the
        // design wavelength is no longer fully dropped.
        let cold = r.drop_fraction_at(Nanometers::new(1550.0), Celsius::new(25.0));
        let hot = r.drop_fraction_at(Nanometers::new(1550.0), Celsius::new(35.0));
        assert!(cold > 0.999);
        assert!(hot < cold);
    }

    #[test]
    fn validation() {
        assert!(RingGeometry::new(Meters::ZERO, 4.3).is_err());
        assert!(RingGeometry::new(Meters::from_micrometers(5.0), 0.0).is_err());
        assert!(RingGeometry::new(Meters::from_micrometers(5.0), f64::NAN).is_err());
    }
}
