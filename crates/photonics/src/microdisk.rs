//! Microdisk laser comparison model (paper reference \[19\]).
//!
//! Section III-C positions the CMOS-compatible VCSEL against electrically
//! pumped InP **microdisk lasers** (Van Campenhout et al., Optics Express
//! 2007): microdisk fabrication is more mature, but VCSELs offer higher
//! achievable output power and a narrower linewidth (0.1 nm vs ≳0.5 nm),
//! hence denser wavelength channels. This module provides a microdisk model
//! with the same L-I-T structure as [`Vcsel`](crate::Vcsel) so the two
//! laser families can be swapped inside the methodology and compared.
//!
//! Anchor values from \[19\]: Ø7.5 µm disk, ~0.5 mA threshold at room
//! temperature, ~30 µW/mA slope into the waveguide, output saturating around
//! 100–120 µW — an order of magnitude below the VCSEL.

use serde::{Deserialize, Serialize};
use vcsel_units::{Amperes, Celsius, Nanometers, Volts, Watts};

use crate::{PhotonicsError, Vcsel, VcselOperatingPoint};

/// Common interface of the on-chip laser families the paper discusses.
///
/// Implemented by [`Vcsel`] (the paper's laser) and [`MicrodiskLaser`]
/// (the comparison from \[19\]), so architecture studies can be generic over
/// the source type.
pub trait Laser {
    /// Threshold current at temperature `t`.
    fn threshold_current(&self, t: Celsius) -> Amperes;

    /// Emitted optical power at drive current `i` and temperature `t`.
    fn optical_power(&self, i: Amperes, t: Celsius) -> Watts;

    /// Emission wavelength at temperature `t`.
    fn wavelength(&self, t: Celsius) -> Nanometers;

    /// Full-width 3-dB linewidth of the emitted line.
    fn linewidth_3db(&self) -> Nanometers;

    /// Maximum rated drive current.
    fn max_current(&self) -> Amperes;
}

impl Laser for Vcsel {
    fn threshold_current(&self, t: Celsius) -> Amperes {
        Vcsel::threshold_current(self, t)
    }

    fn optical_power(&self, i: Amperes, t: Celsius) -> Watts {
        Vcsel::optical_power(self, i, t)
    }

    fn wavelength(&self, t: Celsius) -> Nanometers {
        Vcsel::wavelength(self, t)
    }

    fn linewidth_3db(&self) -> Nanometers {
        Nanometers::new(0.1) // Section III-C: "3dB bandwidth is about 0.1nm"
    }

    fn max_current(&self) -> Amperes {
        Vcsel::max_current(self)
    }
}

/// Electrically pumped InP microdisk laser (paper reference \[19\]).
///
/// # Example
///
/// ```
/// use vcsel_photonics::{Laser, MicrodiskLaser, Vcsel};
/// use vcsel_units::{Amperes, Celsius};
///
/// let disk = MicrodiskLaser::van_campenhout();
/// let vcsel = Vcsel::paper_default();
/// let i = Amperes::from_milliamperes(3.0);
/// let t = Celsius::new(40.0);
/// // The VCSEL's headline advantage: an order of magnitude more power.
/// assert!(vcsel.optical_power(i, t).value() > 5.0 * disk.optical_power(i, t).value());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicrodiskLaser {
    /// Diode turn-on voltage, V.
    v0: f64,
    /// Series resistance, Ω.
    series_resistance: f64,
    /// Threshold current at `t_ref`, A.
    i_th0: f64,
    /// Characteristic temperature T₀ of the exponential threshold rise, °C.
    t0_characteristic: f64,
    /// Slope efficiency into the waveguide at `t_ref`, W/A.
    slope_w_per_a: f64,
    /// Linear thermal decay of the slope efficiency, 1/°C.
    slope_decay_per_c: f64,
    /// Output saturation level, W.
    saturation_w: f64,
    /// Emission wavelength at `t_ref`, nm.
    lambda_ref_nm: f64,
    /// Reference temperature, °C.
    t_ref: f64,
    /// Thermo-optic drift, nm/°C.
    drift_nm_per_c: f64,
    /// 3-dB linewidth, nm.
    linewidth_nm: f64,
    /// Rated maximum current, A.
    max_current: f64,
}

impl MicrodiskLaser {
    /// The \[19\] device: 0.5 mA threshold at 25 °C, T₀ = 45 °C exponential
    /// threshold rise, 30 µW/mA waveguide-coupled slope decaying 1.5 %/°C,
    /// ~120 µW saturation, 1550 nm emission, 0.1 nm/°C drift, 0.5 nm
    /// linewidth, 10 mA rated maximum.
    pub fn van_campenhout() -> Self {
        Self::new(
            Volts::new(1.0),
            120.0,
            Amperes::from_milliamperes(0.5),
            45.0,
            0.030,
            0.015,
            Watts::from_milliwatts(0.12),
            Nanometers::new(1550.0),
            Celsius::new(25.0),
            0.1,
            Nanometers::new(0.5),
            Amperes::from_milliamperes(10.0),
        )
        .expect("reference defaults are valid")
    }

    /// Creates a custom microdisk model.
    ///
    /// `series_resistance` in Ω, `t0_characteristic` in °C,
    /// `slope_w_per_a` in W/A, `slope_decay_per_c` per °C,
    /// `drift_nm_per_c` in nm/°C.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::BadParameter`] when any physical parameter
    /// is non-positive (or the decay/drift is not finite).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        v0: Volts,
        series_resistance: f64,
        i_th0: Amperes,
        t0_characteristic: f64,
        slope_w_per_a: f64,
        slope_decay_per_c: f64,
        saturation: Watts,
        lambda_ref: Nanometers,
        t_ref: Celsius,
        drift_nm_per_c: f64,
        linewidth: Nanometers,
        max_current: Amperes,
    ) -> Result<Self, PhotonicsError> {
        let bad = |reason: String| Err(PhotonicsError::BadParameter { reason });
        if !(v0.value() > 0.0) {
            return bad(format!("turn-on voltage must be positive, got {v0}"));
        }
        if !(series_resistance > 0.0) || !series_resistance.is_finite() {
            return bad(format!("series resistance must be positive, got {series_resistance}"));
        }
        if !(i_th0.value() > 0.0) {
            return bad(format!("threshold current must be positive, got {i_th0}"));
        }
        if !(t0_characteristic > 0.0) || !t0_characteristic.is_finite() {
            return bad(format!("characteristic T0 must be positive, got {t0_characteristic}"));
        }
        if !(slope_w_per_a > 0.0) || !slope_w_per_a.is_finite() {
            return bad(format!("slope efficiency must be positive, got {slope_w_per_a}"));
        }
        if !slope_decay_per_c.is_finite() || slope_decay_per_c < 0.0 {
            return bad(format!("slope decay must be non-negative, got {slope_decay_per_c}"));
        }
        if !(saturation.value() > 0.0) {
            return bad(format!("saturation power must be positive, got {saturation}"));
        }
        if !(lambda_ref.value() > 0.0) {
            return bad(format!("wavelength must be positive, got {lambda_ref}"));
        }
        if !(linewidth.value() > 0.0) {
            return bad(format!("linewidth must be positive, got {linewidth}"));
        }
        if !(max_current.value() > i_th0.value()) {
            return bad("max current must exceed the threshold current".into());
        }
        if !drift_nm_per_c.is_finite() {
            return bad(format!("wavelength drift must be finite, got {drift_nm_per_c}"));
        }
        Ok(Self {
            v0: v0.value(),
            series_resistance,
            i_th0: i_th0.value(),
            t0_characteristic,
            slope_w_per_a,
            slope_decay_per_c,
            saturation_w: saturation.value(),
            lambda_ref_nm: lambda_ref.value(),
            t_ref: t_ref.value(),
            drift_nm_per_c,
            linewidth_nm: linewidth.value(),
            max_current: max_current.value(),
        })
    }

    /// Junction + series voltage at current `i`.
    pub fn voltage(&self, i: Amperes) -> Volts {
        Volts::new(self.v0 + self.series_resistance * i.value())
    }

    /// Full electro-optical operating point (same shape as the VCSEL's).
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::BadParameter`] if `i` is negative, not
    /// finite, or exceeds the rated maximum.
    pub fn operating_point(
        &self,
        i: Amperes,
        t: Celsius,
    ) -> Result<VcselOperatingPoint, PhotonicsError> {
        let iv = i.value();
        if !iv.is_finite() || iv < 0.0 {
            return Err(PhotonicsError::BadParameter {
                reason: format!("drive current must be non-negative, got {i}"),
            });
        }
        if iv > self.max_current {
            return Err(PhotonicsError::BadParameter {
                reason: format!(
                    "drive current {i} exceeds rated maximum {}",
                    Amperes::new(self.max_current)
                ),
            });
        }
        let voltage = self.voltage(i);
        let electrical = i.power(voltage);
        let optical = Laser::optical_power(self, i, t);
        let dissipated = Watts::new((electrical.value() - optical.value()).max(0.0));
        let efficiency =
            if electrical.value() > 0.0 { optical.value() / electrical.value() } else { 0.0 };
        Ok(VcselOperatingPoint {
            current: i,
            voltage,
            electrical_power: electrical,
            optical_power: optical,
            dissipated_power: dissipated,
            efficiency,
        })
    }
}

impl Laser for MicrodiskLaser {
    fn threshold_current(&self, t: Celsius) -> Amperes {
        // Exponential threshold rise I_th(T) = I_th0·exp((T − T_ref)/T₀),
        // the usual empirical law for InP membrane devices.
        let dt = t.value() - self.t_ref;
        Amperes::new(self.i_th0 * (dt / self.t0_characteristic).exp())
    }

    fn optical_power(&self, i: Amperes, t: Celsius) -> Watts {
        let i_th = Laser::threshold_current(self, t).value();
        let above = (i.value() - i_th).max(0.0);
        let slope =
            self.slope_w_per_a * (1.0 - self.slope_decay_per_c * (t.value() - self.t_ref)).max(0.0);
        let linear = slope * above;
        // Soft saturation: P = P_sat·(1 − exp(−linear/P_sat)).
        Watts::new(self.saturation_w * (1.0 - (-linear / self.saturation_w).exp()))
    }

    fn wavelength(&self, t: Celsius) -> Nanometers {
        Nanometers::new(self.lambda_ref_nm + self.drift_nm_per_c * (t.value() - self.t_ref))
    }

    fn linewidth_3db(&self) -> Nanometers {
        Nanometers::new(self.linewidth_nm)
    }

    fn max_current(&self) -> Amperes {
        Amperes::new(self.max_current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> MicrodiskLaser {
        MicrodiskLaser::van_campenhout()
    }

    #[test]
    fn threshold_rises_exponentially() {
        let d = disk();
        let i25 = Laser::threshold_current(&d, Celsius::new(25.0)).as_milliamperes();
        let i70 = Laser::threshold_current(&d, Celsius::new(70.0)).as_milliamperes();
        assert!((i25 - 0.5).abs() < 1e-12);
        // exp(45/45) = e ≈ 2.718.
        assert!((i70 / i25 - core::f64::consts::E).abs() < 1e-9);
    }

    #[test]
    fn output_saturates_near_reference_level() {
        let d = disk();
        let p = Laser::optical_power(&d, Amperes::from_milliamperes(10.0), Celsius::new(25.0));
        assert!(p.as_milliwatts() < 0.12);
        assert!(p.as_milliwatts() > 0.10, "should approach saturation, got {p}");
    }

    #[test]
    fn output_below_threshold_is_zero() {
        let d = disk();
        let p = Laser::optical_power(&d, Amperes::from_milliamperes(0.2), Celsius::new(25.0));
        assert_eq!(p.value(), 0.0);
    }

    #[test]
    fn vcsel_beats_disk_on_power_scalability() {
        // The paper's Section III-C claim: VCSELs offer "higher laser output
        // power" — check at a mid-range drive.
        let d = disk();
        let v = Vcsel::paper_default();
        let i = Amperes::from_milliamperes(6.0);
        let t = Celsius::new(40.0);
        let p_disk = Laser::optical_power(&d, i, t);
        let p_vcsel = Laser::optical_power(&v, i, t);
        assert!(p_vcsel.value() > 8.0 * p_disk.value(), "vcsel {p_vcsel} vs disk {p_disk}");
    }

    #[test]
    fn vcsel_beats_disk_on_linewidth() {
        // "spectral density due to their small 3dB bandwidth (typically 0.1nm)".
        let d = disk();
        let v = Vcsel::paper_default();
        assert!(Laser::linewidth_3db(&v).value() < Laser::linewidth_3db(&d).value());
    }

    #[test]
    fn hot_disk_loses_slope() {
        let d = disk();
        let i = Amperes::from_milliamperes(3.0);
        let cold = Laser::optical_power(&d, i, Celsius::new(25.0));
        let hot = Laser::optical_power(&d, i, Celsius::new(60.0));
        assert!(hot.value() < cold.value());
    }

    #[test]
    fn operating_point_balances_energy() {
        let d = disk();
        let op = d.operating_point(Amperes::from_milliamperes(4.0), Celsius::new(30.0)).unwrap();
        let balance =
            op.electrical_power.value() - op.optical_power.value() - op.dissipated_power.value();
        assert!(balance.abs() < 1e-15);
        assert!(op.efficiency > 0.0 && op.efficiency < 0.05, "disks are inefficient");
    }

    #[test]
    fn rejects_out_of_range_drive() {
        let d = disk();
        assert!(d.operating_point(Amperes::from_milliamperes(-1.0), Celsius::new(25.0)).is_err());
        assert!(d.operating_point(Amperes::from_milliamperes(11.0), Celsius::new(25.0)).is_err());
    }

    #[test]
    fn validation() {
        let mk = |sat: f64| {
            MicrodiskLaser::new(
                Volts::new(1.0),
                120.0,
                Amperes::from_milliamperes(0.5),
                45.0,
                0.030,
                0.015,
                Watts::from_milliwatts(sat),
                Nanometers::new(1550.0),
                Celsius::new(25.0),
                0.1,
                Nanometers::new(0.5),
                Amperes::from_milliamperes(10.0),
            )
        };
        assert!(mk(0.12).is_ok());
        assert!(mk(0.0).is_err());
    }
}
