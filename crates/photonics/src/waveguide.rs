//! Waveguide propagation-loss model.

use serde::{Deserialize, Serialize};
use vcsel_units::{Decibels, DecibelsPerMeter, Meters, Watts};

use crate::PhotonicsError;

/// A silicon waveguide with distributed propagation loss.
///
/// Table 1 of the paper quotes `L_propagation = 0.5 dB/cm` \[3\]; the case
/// study rings are 18 mm, 32.4 mm and 46.8 mm long.
///
/// # Example
///
/// ```
/// use vcsel_photonics::Waveguide;
/// use vcsel_units::{Meters, Watts};
///
/// let wg = Waveguide::paper_default();
/// let out = wg.transmit(Watts::from_milliwatts(1.0), Meters::from_millimeters(46.8));
/// // 2.34 dB of loss over the longest case-study ring.
/// assert!((out.as_milliwatts() - 0.583).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Waveguide {
    /// Distributed propagation loss, dB/m.
    loss_db_per_m: f64,
}

impl Waveguide {
    /// Table 1 waveguide: 0.5 dB/cm.
    pub fn paper_default() -> Self {
        Self::new(DecibelsPerMeter::from_db_per_cm(0.5)).expect("paper default is valid")
    }

    /// Creates a waveguide with the given distributed loss.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::BadParameter`] for a negative or non-finite
    /// loss.
    pub fn new(loss: DecibelsPerMeter) -> Result<Self, PhotonicsError> {
        if loss.value() < 0.0 || !loss.value().is_finite() {
            return Err(PhotonicsError::BadParameter {
                reason: format!("propagation loss must be non-negative, got {loss}"),
            });
        }
        Ok(Self { loss_db_per_m: loss.value() })
    }

    /// The distributed loss.
    pub fn propagation_loss(&self) -> DecibelsPerMeter {
        DecibelsPerMeter::new(self.loss_db_per_m)
    }

    /// Total loss accumulated over `length`.
    pub fn loss_over(&self, length: Meters) -> Decibels {
        Decibels::new(self.loss_db_per_m * length.value())
    }

    /// Fraction of power surviving propagation over `length`.
    pub fn transmission_over(&self, length: Meters) -> f64 {
        10f64.powf(-self.loss_over(length).value() / 10.0)
    }

    /// Power remaining after propagating `input` over `length`.
    pub fn transmit(&self, input: Watts, length: Meters) -> Watts {
        input.attenuate(self.loss_over(length))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lengths() {
        let wg = Waveguide::paper_default();
        assert!((wg.loss_over(Meters::from_millimeters(18.0)).value() - 0.9).abs() < 1e-12);
        assert!((wg.loss_over(Meters::from_millimeters(32.4)).value() - 1.62).abs() < 1e-12);
        assert!((wg.loss_over(Meters::from_millimeters(46.8)).value() - 2.34).abs() < 1e-12);
    }

    #[test]
    fn transmission_multiplies() {
        let wg = Waveguide::paper_default();
        let half = Meters::from_millimeters(10.0);
        let t1 = wg.transmission_over(half);
        let t2 = wg.transmission_over(Meters::from_millimeters(20.0));
        assert!((t1 * t1 - t2).abs() < 1e-12);
    }

    #[test]
    fn lossless_passes_everything() {
        let wg = Waveguide::new(DecibelsPerMeter::ZERO).unwrap();
        let p = Watts::from_milliwatts(0.7);
        assert_eq!(wg.transmit(p, Meters::from_millimeters(100.0)), p);
    }

    #[test]
    fn validation() {
        assert!(Waveguide::new(DecibelsPerMeter::new(-1.0)).is_err());
        assert!(Waveguide::new(DecibelsPerMeter::new(f64::INFINITY)).is_err());
    }
}
