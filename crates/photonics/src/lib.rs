//! Device models for VCSEL-based silicon-photonic interconnect.
//!
//! Everything the paper's SNR analysis needs at the device level:
//!
//! * [`Vcsel`] — CMOS-compatible VCSEL with temperature-dependent efficiency
//!   (paper Figure 8-b), L-I output characteristics and thermal wavelength
//!   drift; reproduces the "15 % at 40 °C → 4 % at 60 °C" collapse,
//! * [`MicroringResonator`] — passive microring with a Lorentzian drop
//!   response (Figure 5-b: 50 % mis-drop at 0.77 nm misalignment), 1.55 nm
//!   3-dB bandwidth and 0.1 nm/°C thermo-optic drift,
//! * [`Photodetector`] — sensitivity-limited receiver (−20 dBm, Table 1),
//! * [`Waveguide`] — distributed propagation loss (0.5 dB/cm, Table 1),
//! * [`MrHeater`] — the per-ring trimming heater whose power (P_heater) the
//!   methodology explores,
//! * [`TechnologyParams`] — the Table 1 parameter bundle.
//!
//! Beyond the paper's figures, the crate also models the surrounding design
//! space the text discusses:
//!
//! * [`RingGeometry`] / [`PeriodicRing`] — free-spectral-range comb of a
//!   physical ring (Ø10 µm ⇒ FSR ≈ 17.8 nm), which bounds the number of
//!   wavelength channels and adds adjacent-order crosstalk,
//! * [`BerModel`] / [`LinkReliability`] — SNR → bit-error rate → effective
//!   bandwidth after re-emission (Section III-C's "data will be re-emitted"),
//! * [`MicrodiskLaser`] + the [`Laser`] trait — the microdisk alternative
//!   of reference \[19\], for the VCSEL-vs-microdisk comparison.
//!
//! # Example: the paper's misalignment anchor point
//!
//! ```
//! use vcsel_photonics::MicroringResonator;
//! use vcsel_units::{Celsius, Nanometers};
//!
//! let mr = MicroringResonator::paper_default(Nanometers::new(1550.0));
//! // A ~7.7 °C temperature difference shifts the ring by ~0.77 nm, at which
//! // point about half of the signal is (wrongly) dropped from the waveguide.
//! let drop = mr.drop_fraction(Nanometers::new(0.775));
//! assert!((drop - 0.5).abs() < 1e-9);
//! ```

// Lint levels (forbid(unsafe_code), warn(missing_docs), the clippy set)
// come from [workspace.lints] in the root Cargo.toml.

mod ber;
mod error;
mod fsr;
mod heater;
mod microdisk;
mod mr;
mod params;
mod photodetector;
mod vcsel;
mod waveguide;

pub use ber::{BerModel, LinkReliability};
pub use error::PhotonicsError;
pub use fsr::{PeriodicRing, RingGeometry};
pub use heater::MrHeater;
pub use microdisk::{Laser, MicrodiskLaser};
pub use mr::MicroringResonator;
pub use params::TechnologyParams;
pub use photodetector::Photodetector;
pub use vcsel::{Vcsel, VcselOperatingPoint};
pub use waveguide::Waveguide;
