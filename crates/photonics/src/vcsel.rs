//! CMOS-compatible VCSEL model (paper Section III-C / Figure 8).
//!
//! The paper's laser is a double-photonic-crystal VCSEL \[7\][8]: 15 × 30 µm²
//! footprint, < 4 µm thick, 12 GHz direct modulation, ~0.1 nm linewidth,
//! vertically emitting into a taper with ~70 % coupling efficiency. Its
//! figures 8-b/8-c give the wall-plug efficiency vs current for
//! 10 °C … 70 °C and the emitted optical power vs dissipated power.
//!
//! We reproduce those curves with a standard L-I-V laser model:
//!
//! * junction voltage `V(I) = V₀ + Rs·I`,
//! * threshold current rising with temperature,
//!   `I_th(T) = I_th0·(1 + ((T − T₀)/T_w)²)`,
//! * differential (slope) efficiency `η_d(T)` tabulated over temperature —
//!   this table plays the role of the paper's "VCSEL model library" input —
//! * optical output `OP(I, T) = η_d(T)·V_ph·(I − I_th(T))` above threshold,
//! * wall-plug efficiency `η = OP / (V·I)`, which then peaks around the
//!   paper's ~15 % at 40 °C and collapses to ~4 % at 60 °C,
//! * thermo-optic wavelength drift of 0.1 nm/°C, identical to the microring
//!   drift so that a *common* temperature shift leaves a channel aligned
//!   while a temperature *difference* misaligns it (Section IV-C).

use serde::{Deserialize, Serialize};
use vcsel_numerics::Interp1d;
use vcsel_units::{Amperes, Celsius, Nanometers, Volts, Watts};

use crate::PhotonicsError;

/// A complete electro-optical operating point of a [`Vcsel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VcselOperatingPoint {
    /// Drive (modulation) current.
    pub current: Amperes,
    /// Junction + series voltage at that current.
    pub voltage: Volts,
    /// Total electrical power `V·I`.
    pub electrical_power: Watts,
    /// Emitted optical power (before the taper).
    pub optical_power: Watts,
    /// Power dissipated as heat, `V·I − OP` (the paper's P_VCSEL).
    pub dissipated_power: Watts,
    /// Wall-plug efficiency `OP / (V·I)` (the paper's η_VCSEL).
    pub efficiency: f64,
}

/// Temperature-dependent VCSEL model.
///
/// # Example
///
/// ```
/// use vcsel_photonics::Vcsel;
/// use vcsel_units::{Amperes, Celsius};
///
/// let vcsel = Vcsel::paper_default();
/// let cool = vcsel.operating_point(Amperes::from_milliamperes(6.0), Celsius::new(40.0))?;
/// let hot = vcsel.operating_point(Amperes::from_milliamperes(6.0), Celsius::new(60.0))?;
/// // Paper: efficiency "can drop from 15 % at 40 °C to 4 % at 60 °C".
/// assert!(cool.efficiency > 3.0 * hot.efficiency);
/// # Ok::<(), vcsel_photonics::PhotonicsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Vcsel {
    /// Diode turn-on voltage V₀.
    v0: f64,
    /// Series resistance in ohms.
    series_resistance: f64,
    /// Photon voltage hν/q at the emission wavelength.
    photon_voltage: f64,
    /// Threshold current at the reference temperature, in amperes.
    i_th0: f64,
    /// Temperature of minimum threshold, °C.
    t_th0: f64,
    /// Characteristic width of the threshold parabola, °C.
    t_th_width: f64,
    /// Slope efficiency vs temperature (the "library" table).
    slope_efficiency: Interp1d,
    /// Emission wavelength at the reference temperature.
    lambda_ref_nm: f64,
    /// Reference temperature for the wavelength, °C.
    t_lambda_ref: f64,
    /// Thermo-optic drift in nm/°C.
    drift_nm_per_c: f64,
    /// Maximum rated current, A.
    max_current: f64,
}

impl Vcsel {
    /// The model fitted to the paper's anchor points: wall-plug efficiency
    /// peaking near 15 % at 40 °C and near 4 % at 60 °C, threshold below
    /// 2 mA over the whole range, 1550 nm emission, 0.1 nm/°C drift,
    /// 0–15 mA modulation range (Figure 8-b's x-axis).
    pub fn paper_default() -> Self {
        // Slope-efficiency table derived in DESIGN.md §2.2 so that the
        // wall-plug peak matches Figure 8-b at each temperature.
        let temps = vec![0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 85.0];
        let etas = vec![0.320, 0.3125, 0.303, 0.291, 0.272, 0.190, 0.079, 0.035, 0.010];
        Self::new(
            Volts::new(0.9),
            50.0,
            Nanometers::new(1550.0),
            Celsius::new(25.0),
            Amperes::from_milliamperes(0.8),
            Celsius::new(10.0),
            55.0,
            Interp1d::new(temps, etas).expect("static table is valid"),
            0.1,
            Amperes::from_milliamperes(20.0),
        )
        .expect("paper defaults are valid")
    }

    /// Creates a custom VCSEL model.
    ///
    /// `series_resistance` is in ohms, `t_th_width` in °C,
    /// `drift` in nm/°C. The `slope_efficiency` table maps temperature (°C)
    /// to differential quantum efficiency (0‥1).
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::BadParameter`] for non-positive voltages,
    /// resistances, thresholds or widths, or slope efficiencies outside
    /// (0, 1].
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        v0: Volts,
        series_resistance: f64,
        lambda_ref: Nanometers,
        t_lambda_ref: Celsius,
        i_th0: Amperes,
        t_th0: Celsius,
        t_th_width: f64,
        slope_efficiency: Interp1d,
        drift_nm_per_c: f64,
        max_current: Amperes,
    ) -> Result<Self, PhotonicsError> {
        let bad = |reason: String| Err(PhotonicsError::BadParameter { reason });
        if !(v0.value() > 0.0) {
            return bad(format!("turn-on voltage must be positive, got {v0}"));
        }
        if !(series_resistance > 0.0) || !series_resistance.is_finite() {
            return bad(format!("series resistance must be positive, got {series_resistance}"));
        }
        if !(lambda_ref.value() > 0.0) {
            return bad(format!("wavelength must be positive, got {lambda_ref}"));
        }
        if !(i_th0.value() > 0.0) {
            return bad(format!("threshold current must be positive, got {i_th0}"));
        }
        if !(t_th_width > 0.0) || !t_th_width.is_finite() {
            return bad(format!("threshold width must be positive, got {t_th_width}"));
        }
        if !(max_current.value() > i_th0.value()) {
            return bad("max current must exceed the threshold current".into());
        }
        if slope_efficiency.ys().iter().any(|&e| !(0.0..=1.0).contains(&e)) {
            return bad("slope efficiencies must lie in [0, 1]".into());
        }
        if !drift_nm_per_c.is_finite() {
            return bad(format!("wavelength drift must be finite, got {drift_nm_per_c}"));
        }
        // Photon voltage hν/q = 1239.84 eV·nm / λ.
        let photon_voltage = 1239.84 / lambda_ref.value();
        Ok(Self {
            v0: v0.value(),
            series_resistance,
            photon_voltage,
            i_th0: i_th0.value(),
            t_th0: t_th0.value(),
            t_th_width,
            slope_efficiency,
            lambda_ref_nm: lambda_ref.value(),
            t_lambda_ref: t_lambda_ref.value(),
            drift_nm_per_c,
            max_current: max_current.value(),
        })
    }

    /// Maximum rated drive current.
    pub fn max_current(&self) -> Amperes {
        Amperes::new(self.max_current)
    }

    /// Threshold current at temperature `t`.
    pub fn threshold_current(&self, t: Celsius) -> Amperes {
        let dt = (t.value() - self.t_th0) / self.t_th_width;
        Amperes::new(self.i_th0 * (1.0 + dt * dt))
    }

    /// Junction + series voltage at current `i`.
    pub fn voltage(&self, i: Amperes) -> Volts {
        Volts::new(self.v0 + self.series_resistance * i.value())
    }

    /// Emitted optical power at current `i` and temperature `t` (zero below
    /// threshold).
    pub fn optical_power(&self, i: Amperes, t: Celsius) -> Watts {
        let i_th = self.threshold_current(t).value();
        let above = (i.value() - i_th).max(0.0);
        let eta_d = self.slope_efficiency.eval(t.value());
        Watts::new(eta_d * self.photon_voltage * above)
    }

    /// Emission wavelength at temperature `t` (0.1 nm/°C drift by default).
    pub fn wavelength(&self, t: Celsius) -> Nanometers {
        Nanometers::new(self.lambda_ref_nm + self.drift_nm_per_c * (t.value() - self.t_lambda_ref))
    }

    /// Full operating point at drive current `i` and junction temperature
    /// `t` (the paper's Figure 2 signal chain).
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::BadParameter`] if `i` is negative, not
    /// finite, or exceeds the rated maximum.
    pub fn operating_point(
        &self,
        i: Amperes,
        t: Celsius,
    ) -> Result<VcselOperatingPoint, PhotonicsError> {
        let iv = i.value();
        if !iv.is_finite() || iv < 0.0 {
            return Err(PhotonicsError::BadParameter {
                reason: format!("drive current must be non-negative, got {i}"),
            });
        }
        if iv > self.max_current {
            return Err(PhotonicsError::BadParameter {
                reason: format!(
                    "drive current {i} exceeds rated maximum {}",
                    Amperes::new(self.max_current)
                ),
            });
        }
        let voltage = self.voltage(i);
        let electrical = i.power(voltage);
        let optical = self.optical_power(i, t);
        let dissipated = Watts::new((electrical.value() - optical.value()).max(0.0));
        let efficiency =
            if electrical.value() > 0.0 { optical.value() / electrical.value() } else { 0.0 };
        Ok(VcselOperatingPoint {
            current: i,
            voltage,
            electrical_power: electrical,
            optical_power: optical,
            dissipated_power: dissipated,
            efficiency,
        })
    }

    /// Wall-plug efficiency η(I, T) — the quantity plotted in Figure 8-b.
    ///
    /// # Errors
    ///
    /// Same contract as [`Vcsel::operating_point`].
    pub fn wall_plug_efficiency(&self, i: Amperes, t: Celsius) -> Result<f64, PhotonicsError> {
        Ok(self.operating_point(i, t)?.efficiency)
    }

    /// Finds the operating point whose *dissipated* power equals `p_vcsel`
    /// at temperature `t` — the inversion needed by the case study, which
    /// fixes P_VCSEL (e.g. 3.6 mW) and derives OP_VCSEL from the ONI
    /// temperature (Figure 8-c).
    ///
    /// Dissipated power is strictly increasing in current, so a bisection
    /// converges unconditionally.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::NoOperatingPoint`] if `p_vcsel` exceeds the
    /// dissipation reachable at the rated maximum current.
    pub fn operating_point_for_dissipated(
        &self,
        p_vcsel: Watts,
        t: Celsius,
    ) -> Result<VcselOperatingPoint, PhotonicsError> {
        let target = p_vcsel.value();
        if !target.is_finite() || target < 0.0 {
            return Err(PhotonicsError::BadParameter {
                reason: format!("dissipated power must be non-negative, got {p_vcsel}"),
            });
        }
        let dissipated_at = |i: f64| {
            let op = self
                .operating_point(Amperes::new(i), t)
                .expect("bisection stays within the rated range");
            op.dissipated_power.value()
        };
        let (mut lo, mut hi) = (0.0, self.max_current);
        if dissipated_at(hi) < target {
            return Err(PhotonicsError::NoOperatingPoint {
                reason: format!(
                    "dissipated power {p_vcsel} unreachable below the rated maximum current \
                     at {t}"
                ),
            });
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if dissipated_at(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 {
                break;
            }
        }
        self.operating_point(Amperes::new(0.5 * (lo + hi)), t)
    }

    /// Traces the Figure 8-c curve: (P_VCSEL, OP_VCSEL) samples at
    /// temperature `t` for currents from threshold to the rated maximum.
    pub fn dissipated_vs_output_curve(&self, t: Celsius, samples: usize) -> Vec<(Watts, Watts)> {
        let n = samples.max(2);
        (0..n)
            .map(|k| {
                let i = self.max_current * k as f64 / (n - 1) as f64;
                let op =
                    self.operating_point(Amperes::new(i), t).expect("currents within rated range");
                (op.dissipated_power, op.optical_power)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ma(v: f64) -> Amperes {
        Amperes::from_milliamperes(v)
    }

    #[test]
    fn paper_efficiency_anchors() {
        let v = Vcsel::paper_default();
        // Peak wall-plug efficiency near the paper's quoted values.
        let peak = |t: f64| {
            (1..=150)
                .map(|k| v.wall_plug_efficiency(ma(0.1 * k as f64), Celsius::new(t)).unwrap())
                .fold(0.0f64, f64::max)
        };
        let p40 = peak(40.0);
        let p60 = peak(60.0);
        assert!((p40 - 0.15).abs() < 0.02, "peak η(40 °C) = {p40}, expected ≈ 0.15");
        assert!((p60 - 0.04).abs() < 0.015, "peak η(60 °C) = {p60}, expected ≈ 0.04");
    }

    #[test]
    fn efficiency_decreases_with_temperature() {
        let v = Vcsel::paper_default();
        let i = ma(8.0);
        let mut last = f64::INFINITY;
        for t in [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0] {
            let eta = v.wall_plug_efficiency(i, Celsius::new(t)).unwrap();
            assert!(eta < last, "η must fall with temperature (t = {t})");
            last = eta;
        }
    }

    #[test]
    fn below_threshold_no_light() {
        let v = Vcsel::paper_default();
        let op = v.operating_point(ma(0.3), Celsius::new(40.0)).unwrap();
        assert_eq!(op.optical_power, Watts::ZERO);
        assert_eq!(op.efficiency, 0.0);
        // Everything dissipates.
        assert!((op.dissipated_power.value() - op.electrical_power.value()).abs() < 1e-15);
    }

    #[test]
    fn threshold_rises_with_temperature() {
        let v = Vcsel::paper_default();
        let th10 = v.threshold_current(Celsius::new(10.0));
        let th70 = v.threshold_current(Celsius::new(70.0));
        assert!(th70.value() > th10.value());
        assert!(th10.as_milliamperes() < 2.0);
        assert!(th70.as_milliamperes() < 3.0);
    }

    #[test]
    fn energy_conservation() {
        let v = Vcsel::paper_default();
        for i_ma in [1.0, 3.0, 6.0, 10.0, 15.0] {
            let op = v.operating_point(ma(i_ma), Celsius::new(40.0)).unwrap();
            let total = op.optical_power.value() + op.dissipated_power.value();
            assert!(
                (total - op.electrical_power.value()).abs() < 1e-15,
                "OP + P_diss must equal V·I at {i_ma} mA"
            );
            assert!(op.efficiency >= 0.0 && op.efficiency < 1.0);
        }
    }

    #[test]
    fn wavelength_drift_is_0_1_nm_per_c() {
        let v = Vcsel::paper_default();
        let w40 = v.wavelength(Celsius::new(40.0));
        let w47 = v.wavelength(Celsius::new(47.7));
        assert!(((w47 - w40).value() - 0.77).abs() < 1e-9);
    }

    #[test]
    fn dissipated_inversion_round_trip() {
        let v = Vcsel::paper_default();
        let t = Celsius::new(55.0);
        // The paper's case-study dissipation: 3.6 mW.
        let op = v.operating_point_for_dissipated(Watts::from_milliwatts(3.6), t).unwrap();
        assert!((op.dissipated_power.as_milliwatts() - 3.6).abs() < 1e-6);
        // Re-evaluating at the found current reproduces the point.
        let op2 = v.operating_point(op.current, t).unwrap();
        assert!((op2.optical_power.value() - op.optical_power.value()).abs() < 1e-15);
    }

    #[test]
    fn dissipated_inversion_rejects_unreachable() {
        let v = Vcsel::paper_default();
        let err =
            v.operating_point_for_dissipated(Watts::new(10.0), Celsius::new(40.0)).unwrap_err();
        assert!(matches!(err, PhotonicsError::NoOperatingPoint { .. }));
    }

    #[test]
    fn output_drops_with_temperature_at_fixed_dissipation() {
        // The crux of the paper's power-efficiency argument: for the same
        // P_VCSEL, a hotter laser emits less light.
        let v = Vcsel::paper_default();
        let p = Watts::from_milliwatts(3.6);
        let cold = v.operating_point_for_dissipated(p, Celsius::new(45.0)).unwrap();
        let hot = v.operating_point_for_dissipated(p, Celsius::new(62.0)).unwrap();
        assert!(
            cold.optical_power.value() > 2.0 * hot.optical_power.value(),
            "OP(45 °C) = {} should dwarf OP(62 °C) = {}",
            cold.optical_power,
            hot.optical_power
        );
    }

    #[test]
    fn figure_8c_curve_is_saturating() {
        let v = Vcsel::paper_default();
        let curve = v.dissipated_vs_output_curve(Celsius::new(20.0), 50);
        assert_eq!(curve.len(), 50);
        // Output is non-decreasing with dissipation...
        for w in curve.windows(2) {
            assert!(w[1].1.value() >= w[0].1.value() - 1e-15);
        }
        // ...but with diminishing slope (concave): compare average slopes of
        // the first and last thirds.
        let slope = |a: (Watts, Watts), b: (Watts, Watts)| {
            (b.1.value() - a.1.value()) / (b.0.value() - a.0.value()).max(1e-15)
        };
        let early = slope(curve[5], curve[15]);
        let late = slope(curve[35], curve[49]);
        assert!(late < early, "curve must saturate: early {early}, late {late}");
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(Vcsel::paper_default().operating_point(ma(-1.0), Celsius::new(40.0)).is_err());
        assert!(Vcsel::paper_default().operating_point(ma(25.0), Celsius::new(40.0)).is_err());
        let table = Interp1d::new(vec![0.0, 50.0], vec![0.3, 0.1]).unwrap();
        assert!(Vcsel::new(
            Volts::new(0.0),
            50.0,
            Nanometers::new(1550.0),
            Celsius::new(25.0),
            ma(0.8),
            Celsius::new(10.0),
            55.0,
            table,
            0.1,
            ma(20.0),
        )
        .is_err());
    }
}
