//! Bit-error-rate and effective-bandwidth models.
//!
//! The paper's Section III-C observes that as chip activity heats the
//! lasers, "either the optical interconnect bandwidth will decrease assuming
//! a same modulation current (the SNR being lower, data will be re-emitted)
//! or the optical interconnect power consumption will increase". This module
//! quantifies the first branch:
//!
//! * [`BerModel`] converts a worst-case SNR (the output of the SNR analysis)
//!   into a bit-error rate for on-off-keyed signalling with Gaussian noise,
//!   `BER = Q(√SNR)` with `Q` the Gaussian tail function,
//! * [`LinkReliability`] turns the BER into a packet-error rate and the
//!   *effective bandwidth* after re-emission of corrupted packets — the
//!   quantity the paper says will drop under higher activity.

use serde::{Deserialize, Serialize};
use vcsel_numerics::special::{q_function, q_inverse};

use crate::PhotonicsError;

/// On-off-keying bit-error-rate model.
///
/// For OOK with additive Gaussian noise and an optimal threshold, the
/// bit-error rate is `BER = Q(Q_factor)` where `Q(·)` is the Gaussian tail
/// probability and the Q-factor relates to the electrical signal-to-noise
/// ratio as `Q_factor = √SNR`. The crosstalk computed by the SNR analysis is
/// treated as Gaussian-equivalent noise — the standard worst-case assumption
/// in ONoC link-budget papers (e.g. Ye et al. \[13\]).
///
/// # Example
///
/// ```
/// use vcsel_photonics::BerModel;
///
/// let model = BerModel::ook();
/// // The classic rule of thumb: ~15.6 dB SNR gives BER 1e-9.
/// let ber = model.ber_from_snr_db(15.56);
/// assert!(ber > 1e-10 && ber < 1e-8);
/// // 38 dB (the paper's best case) is essentially error-free.
/// assert!(model.ber_from_snr_db(38.0) < 1e-300);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BerModel {
    _private: (),
}

impl BerModel {
    /// The on-off-keying model used throughout the crate.
    pub fn ook() -> Self {
        Self { _private: () }
    }

    /// Q-factor for a *linear* signal-to-noise power ratio.
    pub fn q_factor(&self, snr_linear: f64) -> f64 {
        snr_linear.max(0.0).sqrt()
    }

    /// Bit-error rate for a linear SNR.
    pub fn ber_from_snr(&self, snr_linear: f64) -> f64 {
        q_function(self.q_factor(snr_linear))
    }

    /// Bit-error rate for an SNR in dB.
    pub fn ber_from_snr_db(&self, snr_db: f64) -> f64 {
        self.ber_from_snr(10f64.powf(snr_db / 10.0))
    }

    /// The SNR (in dB) required to reach a target BER.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::BadParameter`] if `target_ber` is outside
    /// `(0, 0.5]` — lower than any achievable error floor or not a
    /// probability.
    pub fn required_snr_db(&self, target_ber: f64) -> Result<f64, PhotonicsError> {
        let q = q_inverse(target_ber).ok_or_else(|| PhotonicsError::BadParameter {
            reason: format!("target BER must be in (0, 0.5], got {target_ber}"),
        })?;
        Ok(20.0 * q.log10())
    }
}

impl Default for BerModel {
    fn default() -> Self {
        Self::ook()
    }
}

/// Packet-level reliability and effective bandwidth of a link.
///
/// Corrupted packets are detected and re-emitted (the paper's "data will be
/// re-emitted"), so a raw line rate `B` delivers an effective bandwidth
/// `B · (1 − PER)` with `PER = 1 − (1 − BER)^bits`.
///
/// # Example
///
/// ```
/// use vcsel_photonics::{BerModel, LinkReliability};
///
/// // 12 GHz modulation (Section V-A), 512-bit packets.
/// let link = LinkReliability::new(12e9, 512)?;
/// let good = link.effective_bandwidth_hz(BerModel::ook().ber_from_snr_db(38.0));
/// let poor = link.effective_bandwidth_hz(BerModel::ook().ber_from_snr_db(10.0));
/// assert!(good > 0.999 * 12e9);
/// assert!(poor < good);
/// # Ok::<(), vcsel_photonics::PhotonicsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkReliability {
    /// Raw line rate, Hz (bit/s for OOK).
    raw_bandwidth_hz: f64,
    /// Packet size in bits.
    packet_bits: u32,
}

impl LinkReliability {
    /// A link with the given raw line rate (Hz = bit/s for OOK) and packet
    /// size (bits).
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::BadParameter`] for a non-positive bandwidth
    /// or zero-size packets.
    pub fn new(raw_bandwidth_hz: f64, packet_bits: u32) -> Result<Self, PhotonicsError> {
        if !(raw_bandwidth_hz > 0.0) || !raw_bandwidth_hz.is_finite() {
            return Err(PhotonicsError::BadParameter {
                reason: format!("raw bandwidth must be positive, got {raw_bandwidth_hz}"),
            });
        }
        if packet_bits == 0 {
            return Err(PhotonicsError::BadParameter {
                reason: "packet size must be at least one bit".into(),
            });
        }
        Ok(Self { raw_bandwidth_hz, packet_bits })
    }

    /// The paper's link: 12 GHz direct modulation, 512-bit packets.
    pub fn paper_default() -> Self {
        Self::new(12e9, 512).expect("paper defaults are valid")
    }

    /// Raw line rate, Hz.
    pub fn raw_bandwidth_hz(&self) -> f64 {
        self.raw_bandwidth_hz
    }

    /// Packet size, bits.
    pub fn packet_bits(&self) -> u32 {
        self.packet_bits
    }

    /// Probability that a whole packet arrives intact:
    /// `(1 − BER)^bits = exp(bits·ln1p(−BER))`, computed in log space so
    /// both the ≈1 and the ≈0 regime keep full relative precision.
    pub fn packet_success_rate(&self, ber: f64) -> f64 {
        let ber = ber.clamp(0.0, 1.0);
        if ber >= 1.0 {
            return 0.0;
        }
        (f64::from(self.packet_bits) * f64::ln_1p(-ber)).exp()
    }

    /// Packet-error rate `PER = 1 − (1 − BER)^bits`, via `exp_m1` to stay
    /// accurate for tiny BERs.
    pub fn packet_error_rate(&self, ber: f64) -> f64 {
        let ber = ber.clamp(0.0, 1.0);
        if ber >= 1.0 {
            return 1.0;
        }
        -f64::exp_m1(f64::from(self.packet_bits) * f64::ln_1p(-ber))
    }

    /// Expected number of (re-)emissions until a packet lands intact:
    /// `1 / P(success)`. Returns `f64::INFINITY` when every packet is
    /// corrupt.
    pub fn expected_emissions(&self, ber: f64) -> f64 {
        let success = self.packet_success_rate(ber);
        if success <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / success
        }
    }

    /// Effective (goodput) bandwidth after re-emission, Hz.
    pub fn effective_bandwidth_hz(&self, ber: f64) -> f64 {
        self.raw_bandwidth_hz * self.packet_success_rate(ber)
    }

    /// Fraction of the raw bandwidth that survives re-emission, in `[0, 1]`.
    pub fn bandwidth_efficiency(&self, ber: f64) -> f64 {
        self.packet_success_rate(ber)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ber_decreases_with_snr() {
        let m = BerModel::ook();
        let mut prev = 1.0;
        for snr_db in [0.0, 5.0, 10.0, 15.0, 20.0, 25.0] {
            let ber = m.ber_from_snr_db(snr_db);
            assert!(ber < prev, "BER must fall with SNR at {snr_db} dB");
            prev = ber;
        }
    }

    #[test]
    fn required_snr_round_trips() {
        let m = BerModel::ook();
        for target in [1e-3, 1e-9, 1e-12] {
            let snr = m.required_snr_db(target).unwrap();
            let back = m.ber_from_snr_db(snr);
            assert!(((back - target) / target).abs() < 1e-5, "round trip at {target}");
        }
        assert!(m.required_snr_db(0.0).is_err());
        assert!(m.required_snr_db(0.7).is_err());
    }

    #[test]
    fn ber_1e9_at_textbook_snr() {
        // Q = 6 -> BER ~ 1e-9; SNR = Q² = 36 -> 15.56 dB.
        let m = BerModel::ook();
        let snr = m.required_snr_db(1e-9).unwrap();
        assert!((snr - 15.56).abs() < 0.05, "got {snr} dB");
    }

    #[test]
    fn per_scales_with_packet_size_at_small_ber() {
        let short = LinkReliability::new(12e9, 64).unwrap();
        let long = LinkReliability::new(12e9, 4096).unwrap();
        let ber = 1e-9;
        let ratio = long.packet_error_rate(ber) / short.packet_error_rate(ber);
        // For BER·bits << 1, PER ≈ bits·BER.
        assert!((ratio - 64.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn per_is_accurate_for_tiny_ber() {
        let link = LinkReliability::paper_default();
        // Naive 1-(1-BER)^n would round to 0 here; ln1p keeps precision.
        let per = link.packet_error_rate(1e-17);
        let expect = 512.0 * 1e-17;
        assert!(((per - expect) / expect).abs() < 1e-6, "per {per:e}");
    }

    #[test]
    fn effective_bandwidth_degrades_gracefully() {
        let link = LinkReliability::paper_default();
        assert!((link.effective_bandwidth_hz(0.0) - 12e9).abs() < 1.0);
        assert_eq!(link.effective_bandwidth_hz(1.0), 0.0);
        assert_eq!(link.expected_emissions(1.0), f64::INFINITY);
        let mid = link.effective_bandwidth_hz(1e-3);
        assert!(mid > 0.0 && mid < 12e9);
    }

    #[test]
    fn emissions_and_efficiency_are_consistent() {
        let link = LinkReliability::paper_default();
        for ber in [1e-9, 1e-6, 1e-4, 1e-3] {
            let n = link.expected_emissions(ber);
            let eff = link.bandwidth_efficiency(ber);
            assert!((n * eff - 1.0).abs() < 1e-12, "n·eff != 1 at {ber}");
        }
    }

    #[test]
    fn validation() {
        assert!(LinkReliability::new(0.0, 512).is_err());
        assert!(LinkReliability::new(f64::NAN, 512).is_err());
        assert!(LinkReliability::new(12e9, 0).is_err());
    }
}
