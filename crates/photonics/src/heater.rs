//! Microring trimming heater.
//!
//! The paper places "a resistance on top of each MR" to heat the rings and
//! flatten the intra-ONI temperature gradient. The heater's electrical power
//! (P_heater) is the key design-space knob of Figure 9-b; at the device
//! level it also supports active wavelength trimming, whose cost the paper
//! quotes as 190 µW/nm for heat tuning (red shift) and 130 µW/nm for
//! voltage tuning (blue shift) \[17\].

use serde::{Deserialize, Serialize};
use vcsel_units::{Nanometers, Watts};

use crate::PhotonicsError;

/// A resistive heater sitting on top of a microring.
///
/// # Example
///
/// ```
/// use vcsel_photonics::MrHeater;
/// use vcsel_units::Nanometers;
///
/// let heater = MrHeater::paper_default();
/// // Red-shifting a ring by 1 nm costs 190 µW (paper Section III-B).
/// let p = heater.power_for_shift(Nanometers::new(1.0))?;
/// assert!((p.as_microwatts() - 190.0).abs() < 1e-9);
/// # Ok::<(), vcsel_photonics::PhotonicsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MrHeater {
    /// Heat-tuning cost, W/nm of red shift.
    tuning_w_per_nm: f64,
    /// Maximum electrical power the heater may dissipate, W.
    max_power: f64,
}

impl MrHeater {
    /// The paper's heat-tuning figure: 190 µW/nm, with a generous 10 mW cap.
    pub fn paper_default() -> Self {
        Self::new(190e-6, Watts::from_milliwatts(10.0)).expect("paper defaults are valid")
    }

    /// Creates a heater with the given tuning cost (W per nm of red shift)
    /// and power cap.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::BadParameter`] for non-positive arguments.
    pub fn new(tuning_w_per_nm: f64, max_power: Watts) -> Result<Self, PhotonicsError> {
        if !(tuning_w_per_nm > 0.0) || !tuning_w_per_nm.is_finite() {
            return Err(PhotonicsError::BadParameter {
                reason: format!("tuning cost must be positive, got {tuning_w_per_nm}"),
            });
        }
        if !(max_power.value() > 0.0) {
            return Err(PhotonicsError::BadParameter {
                reason: format!("max power must be positive, got {max_power}"),
            });
        }
        Ok(Self { tuning_w_per_nm, max_power: max_power.value() })
    }

    /// Maximum rated heater power.
    pub fn max_power(&self) -> Watts {
        Watts::new(self.max_power)
    }

    /// Electrical power needed to red-shift the ring by `shift`.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::BadParameter`] for a negative shift
    /// (heaters cannot blue-shift) and [`PhotonicsError::NoOperatingPoint`]
    /// if the required power exceeds the rated maximum.
    pub fn power_for_shift(&self, shift: Nanometers) -> Result<Watts, PhotonicsError> {
        if shift.value() < 0.0 || !shift.value().is_finite() {
            return Err(PhotonicsError::BadParameter {
                reason: format!("heaters only red-shift; got {shift}"),
            });
        }
        let p = self.tuning_w_per_nm * shift.value();
        if p > self.max_power {
            return Err(PhotonicsError::NoOperatingPoint {
                reason: format!(
                    "shift {shift} needs {} W, above the {} W rating",
                    p, self.max_power
                ),
            });
        }
        Ok(Watts::new(p))
    }

    /// Red shift produced by dissipating `power` (clamped at the rating).
    pub fn shift_for_power(&self, power: Watts) -> Nanometers {
        let p = power.value().clamp(0.0, self.max_power);
        Nanometers::new(p / self.tuning_w_per_nm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_shift_round_trip() {
        let h = MrHeater::paper_default();
        let p = h.power_for_shift(Nanometers::new(0.77)).unwrap();
        let s = h.shift_for_power(p);
        assert!((s.value() - 0.77).abs() < 1e-12);
    }

    #[test]
    fn blue_shift_rejected() {
        let h = MrHeater::paper_default();
        assert!(h.power_for_shift(Nanometers::new(-0.1)).is_err());
    }

    #[test]
    fn power_cap_enforced() {
        let h = MrHeater::new(190e-6, Watts::from_microwatts(100.0)).unwrap();
        assert!(h.power_for_shift(Nanometers::new(1.0)).is_err());
        // shift_for_power clamps instead of erroring.
        let s = h.shift_for_power(Watts::new(1.0));
        assert!((s.value() - 100e-6 / 190e-6).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(MrHeater::new(0.0, Watts::new(1.0)).is_err());
        assert!(MrHeater::new(190e-6, Watts::ZERO).is_err());
    }
}
