//! The paper's Table 1 technological parameters, bundled.

use serde::{Deserialize, Serialize};
use vcsel_units::{Dbm, DecibelsPerMeter, Nanometers};

/// The technology assumptions of the paper's evaluation (Table 1), plus the
/// two device constants quoted in the surrounding text (taper coupling
/// efficiency and VCSEL linewidth).
///
/// | Parameter | Value |
/// |---|---|
/// | Wavelength range | 1550 nm |
/// | MR 3-dB bandwidth | 1.55 nm |
/// | Photodetector sensitivity | −20 dBm |
/// | Thermal sensitivity | 0.1 nm/°C |
/// | Propagation loss | 0.5 dB/cm |
/// | Taper coupling efficiency | 70 % |
/// | VCSEL 3-dB linewidth | 0.1 nm |
///
/// # Example
///
/// ```
/// use vcsel_photonics::TechnologyParams;
///
/// let t = TechnologyParams::paper();
/// assert_eq!(t.center_wavelength.value(), 1550.0);
/// assert!((t.taper_coupling - 0.7).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechnologyParams {
    /// Operating band center (Table 1: 1550 nm).
    pub center_wavelength: Nanometers,
    /// Microring 3-dB bandwidth (Table 1: 1.55 nm).
    pub mr_bandwidth_3db: Nanometers,
    /// Photodetector sensitivity (Table 1: −20 dBm).
    pub photodetector_sensitivity: Dbm,
    /// Thermo-optic drift of silicon devices (Table 1: 0.1 nm/°C).
    pub thermal_sensitivity_nm_per_c: f64,
    /// Distributed waveguide loss (Table 1: 0.5 dB/cm).
    pub propagation_loss: DecibelsPerMeter,
    /// Vertical-to-horizontal taper coupling efficiency (Section III-C: 70 %).
    pub taper_coupling: f64,
    /// VCSEL 3-dB linewidth (Section III-C: ~0.1 nm).
    pub vcsel_linewidth_3db: Nanometers,
}

impl TechnologyParams {
    /// The exact Table 1 values.
    pub fn paper() -> Self {
        Self {
            center_wavelength: Nanometers::new(1550.0),
            mr_bandwidth_3db: Nanometers::new(1.55),
            photodetector_sensitivity: Dbm::new(-20.0),
            thermal_sensitivity_nm_per_c: 0.1,
            propagation_loss: DecibelsPerMeter::from_db_per_cm(0.5),
            taper_coupling: 0.7,
            vcsel_linewidth_3db: Nanometers::new(0.1),
        }
    }
}

impl Default for TechnologyParams {
    fn default() -> Self {
        Self::paper()
    }
}

impl core::fmt::Display for TechnologyParams {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "Wavelength range        : {}", self.center_wavelength)?;
        writeln!(f, "BW3-dB                  : {}", self.mr_bandwidth_3db)?;
        writeln!(f, "Photodetector sensitivity: {}", self.photodetector_sensitivity)?;
        writeln!(f, "Thermal sensitivity     : {} nm/°C", self.thermal_sensitivity_nm_per_c)?;
        writeln!(f, "Lpropagation            : {} dB/cm", self.propagation_loss.as_db_per_cm())?;
        writeln!(f, "Taper coupling          : {} %", self.taper_coupling * 100.0)?;
        write!(f, "VCSEL linewidth (3 dB)  : {}", self.vcsel_linewidth_3db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let t = TechnologyParams::paper();
        assert_eq!(t.center_wavelength, Nanometers::new(1550.0));
        assert_eq!(t.mr_bandwidth_3db, Nanometers::new(1.55));
        assert_eq!(t.photodetector_sensitivity.value(), -20.0);
        assert_eq!(t.thermal_sensitivity_nm_per_c, 0.1);
        assert!((t.propagation_loss.as_db_per_cm() - 0.5).abs() < 1e-12);
        assert_eq!(t.vcsel_linewidth_3db, Nanometers::new(0.1));
    }

    #[test]
    fn display_mentions_every_row() {
        let s = TechnologyParams::paper().to_string();
        for needle in ["1550", "1.55", "-20", "0.1", "0.5", "70"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(TechnologyParams::default(), TechnologyParams::paper());
    }
}
