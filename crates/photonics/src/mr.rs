//! Passive microring resonator model (paper Figure 5).
//!
//! Wavelength-routed ONoCs drop signals with passive rings whose resonance
//! is fixed at design time but drifts with temperature (0.1 nm/°C). The
//! fraction of input power transferred to the drop port follows the ring's
//! Lorentzian response:
//!
//! ```text
//! drop(δλ) = 1 / (1 + (2·δλ / BW₃dB)²)
//! ```
//!
//! With the paper's BW₃dB = 1.55 nm, a 0.775 nm misalignment — i.e. a
//! 7.75 °C temperature difference — drops exactly half the signal, matching
//! the "50 % of the signal will be (wrongly) dropped for a 7.7 °C
//! temperature difference" anchor of Section IV-C.

use serde::{Deserialize, Serialize};
use vcsel_units::{Celsius, Decibels, Nanometers};

use crate::PhotonicsError;

/// A passive add-drop microring resonator.
///
/// # Example
///
/// ```
/// use vcsel_photonics::MicroringResonator;
/// use vcsel_units::{Celsius, Nanometers};
///
/// let mr = MicroringResonator::paper_default(Nanometers::new(1550.0));
/// // Perfect alignment: everything couples to the drop port.
/// assert!((mr.drop_fraction(Nanometers::ZERO) - 1.0).abs() < 1e-12);
/// // Far away: almost everything continues to the through port.
/// assert!(mr.through_fraction(Nanometers::new(10.0)) > 0.97);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroringResonator {
    /// Design resonance at the reference temperature, nm.
    resonance_nm: f64,
    /// Reference temperature, °C.
    t_ref: f64,
    /// 3-dB bandwidth, nm.
    bw_3db_nm: f64,
    /// Thermo-optic drift, nm/°C.
    drift_nm_per_c: f64,
    /// Excess insertion loss applied to the *dropped* signal, dB.
    drop_loss_db: f64,
}

impl MicroringResonator {
    /// Ring with the paper's Table 1 parameters: 1.55 nm 3-dB bandwidth,
    /// 0.1 nm/°C drift, lossless drop, referenced to 25 °C.
    pub fn paper_default(resonance: Nanometers) -> Self {
        Self::new(resonance, Celsius::new(25.0), Nanometers::new(1.55), 0.1, Decibels::ZERO)
            .expect("paper defaults are valid")
    }

    /// Creates a custom ring.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::BadParameter`] for non-positive resonance
    /// or bandwidth, or negative drop loss.
    pub fn new(
        resonance: Nanometers,
        t_ref: Celsius,
        bw_3db: Nanometers,
        drift_nm_per_c: f64,
        drop_loss: Decibels,
    ) -> Result<Self, PhotonicsError> {
        if !(resonance.value() > 0.0) {
            return Err(PhotonicsError::BadParameter {
                reason: format!("resonance must be positive, got {resonance}"),
            });
        }
        if !(bw_3db.value() > 0.0) {
            return Err(PhotonicsError::BadParameter {
                reason: format!("3-dB bandwidth must be positive, got {bw_3db}"),
            });
        }
        if drop_loss.value() < 0.0 || !drop_loss.value().is_finite() {
            return Err(PhotonicsError::BadParameter {
                reason: format!("drop loss must be non-negative, got {drop_loss}"),
            });
        }
        if !drift_nm_per_c.is_finite() {
            return Err(PhotonicsError::BadParameter {
                reason: format!("drift must be finite, got {drift_nm_per_c}"),
            });
        }
        Ok(Self {
            resonance_nm: resonance.value(),
            t_ref: t_ref.value(),
            bw_3db_nm: bw_3db.value(),
            drift_nm_per_c,
            drop_loss_db: drop_loss.value(),
        })
    }

    /// Design resonance at the reference temperature.
    pub fn design_resonance(&self) -> Nanometers {
        Nanometers::new(self.resonance_nm)
    }

    /// 3-dB bandwidth.
    pub fn bandwidth_3db(&self) -> Nanometers {
        Nanometers::new(self.bw_3db_nm)
    }

    /// Resonant wavelength at temperature `t`.
    pub fn resonance_at(&self, t: Celsius) -> Nanometers {
        Nanometers::new(self.resonance_nm + self.drift_nm_per_c * (t.value() - self.t_ref))
    }

    /// Fraction of the input power transferred to the drop port for a
    /// signal detuned by `delta` from the ring resonance (Lorentzian).
    pub fn drop_fraction(&self, delta: Nanometers) -> f64 {
        let x = 2.0 * delta.value() / self.bw_3db_nm;
        let lorentzian = 1.0 / (1.0 + x * x);
        lorentzian * 10f64.powf(-self.drop_loss_db / 10.0)
    }

    /// Fraction of the input power continuing to the through port.
    ///
    /// Power conservation: `drop + through = 1` for a lossless ring (the
    /// drop excess loss removes power from the drop port only, modelling
    /// scattering inside the ring).
    pub fn through_fraction(&self, delta: Nanometers) -> f64 {
        let x = 2.0 * delta.value() / self.bw_3db_nm;
        1.0 - 1.0 / (1.0 + x * x)
    }

    /// Drop fraction for a signal at `signal` wavelength crossing this ring
    /// at ring temperature `t`.
    pub fn drop_fraction_at(&self, signal: Nanometers, t: Celsius) -> f64 {
        self.drop_fraction(signal - self.resonance_at(t))
    }

    /// Through fraction for a signal at `signal` wavelength crossing this
    /// ring at ring temperature `t`.
    pub fn through_fraction_at(&self, signal: Nanometers, t: Celsius) -> f64 {
        self.through_fraction(signal - self.resonance_at(t))
    }

    /// The transmission-loss equivalent of a detuning, in the form used by
    /// the paper's "0.1 nm drift corresponds to 6.5 % transmission loss"
    /// remark: `1 − drop(δλ)` expressed as a fraction.
    pub fn transmission_loss(&self, delta: Nanometers) -> f64 {
        1.0 - self.drop_fraction(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> MicroringResonator {
        MicroringResonator::paper_default(Nanometers::new(1550.0))
    }

    #[test]
    fn half_drop_at_half_bandwidth() {
        // 0.775 nm = BW/2 -> exactly 50 % drop (the 7.7 °C anchor).
        let d = ring().drop_fraction(Nanometers::new(0.775));
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn small_drift_loss_is_percent_scale() {
        // Paper text quotes "6.5 % transmission loss" for a 0.1 nm drift;
        // its own Figure 5-b Lorentzian (50 % at 0.775 nm) actually gives
        // 1 − 1/(1+(0.2/1.55)²) ≈ 1.6 %. We follow the Figure 5-b curve —
        // the one the SNR model is built on — and record the discrepancy
        // in EXPERIMENTS.md.
        let loss = ring().transmission_loss(Nanometers::new(0.1));
        assert!((loss - 0.01637).abs() < 1e-4, "loss {loss}");
    }

    #[test]
    fn symmetry_in_detuning() {
        let r = ring();
        for d in [0.1, 0.5, 1.0, 3.0] {
            assert!(
                (r.drop_fraction(Nanometers::new(d)) - r.drop_fraction(Nanometers::new(-d))).abs()
                    < 1e-15
            );
        }
    }

    #[test]
    fn drop_plus_through_conserves_power() {
        let r = ring();
        for d in [0.0, 0.2, 0.775, 1.55, 5.0] {
            let total =
                r.drop_fraction(Nanometers::new(d)) + r.through_fraction(Nanometers::new(d));
            assert!((total - 1.0).abs() < 1e-12, "at {d} nm: {total}");
        }
    }

    #[test]
    fn thermal_drift_shifts_resonance() {
        let r = ring();
        let base = r.resonance_at(Celsius::new(25.0));
        assert!((base.value() - 1550.0).abs() < 1e-12);
        let hot = r.resonance_at(Celsius::new(32.7));
        assert!(((hot - base).value() - 0.77).abs() < 1e-9);
    }

    #[test]
    fn common_mode_temperature_keeps_alignment() {
        // VCSEL and ring at the same temperature stay aligned (both drift
        // at 0.1 nm/°C) — the paper's Section IV-C assumption.
        let r = ring();
        let vcsel = crate::Vcsel::paper_default();
        for t in [25.0, 40.0, 55.0, 70.0] {
            let t = Celsius::new(t);
            // Both referenced to the same design wavelength at 25 °C.
            let misalignment = vcsel.wavelength(t) - r.resonance_at(t);
            assert!(misalignment.value().abs() < 1e-9, "misaligned at {t}");
        }
    }

    #[test]
    fn drop_loss_attenuates_drop_port_only() {
        let lossy = MicroringResonator::new(
            Nanometers::new(1550.0),
            Celsius::new(25.0),
            Nanometers::new(1.55),
            0.1,
            Decibels::new(3.0),
        )
        .unwrap();
        let d = lossy.drop_fraction(Nanometers::ZERO);
        assert!((d - 0.501).abs() < 0.01, "3 dB loss halves the drop: {d}");
        assert!((lossy.through_fraction(Nanometers::ZERO) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(MicroringResonator::new(
            Nanometers::ZERO,
            Celsius::new(25.0),
            Nanometers::new(1.55),
            0.1,
            Decibels::ZERO
        )
        .is_err());
        assert!(MicroringResonator::new(
            Nanometers::new(1550.0),
            Celsius::new(25.0),
            Nanometers::ZERO,
            0.1,
            Decibels::ZERO
        )
        .is_err());
        assert!(MicroringResonator::new(
            Nanometers::new(1550.0),
            Celsius::new(25.0),
            Nanometers::new(1.55),
            0.1,
            Decibels::new(-1.0)
        )
        .is_err());
    }
}
