//! Error type for the device models.

use core::fmt;

/// Errors produced by photonic device models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PhotonicsError {
    /// A device parameter is outside its physical range.
    BadParameter {
        /// Explanation of what is wrong.
        reason: String,
    },
    /// An operating point could not be found (e.g. a requested dissipated
    /// power is unreachable at the given temperature).
    NoOperatingPoint {
        /// Explanation of why.
        reason: String,
    },
}

impl fmt::Display for PhotonicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadParameter { reason } => write!(f, "bad parameter: {reason}"),
            Self::NoOperatingPoint { reason } => write!(f, "no operating point: {reason}"),
        }
    }
}

impl std::error::Error for PhotonicsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = PhotonicsError::BadParameter { reason: "negative current".into() };
        assert!(e.to_string().contains("negative current"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<PhotonicsError>();
    }
}
