//! Property tests on the device models.

use proptest::prelude::*;
use vcsel_photonics::{MicroringResonator, Photodetector, Vcsel, Waveguide};
use vcsel_units::{Amperes, Celsius, Dbm, Meters, Nanometers, Watts};

proptest! {
    /// Optical output never exceeds electrical input at any operating
    /// point (the second law, effectively).
    #[test]
    fn vcsel_never_exceeds_unity_efficiency(i_ma in 0.0f64..20.0, t in -20.0f64..120.0) {
        let v = Vcsel::paper_default();
        let op = v.operating_point(Amperes::from_milliamperes(i_ma), Celsius::new(t)).unwrap();
        prop_assert!(op.optical_power.value() <= op.electrical_power.value() + 1e-15);
        prop_assert!(op.dissipated_power.value() >= 0.0);
    }

    /// Dissipated power is strictly increasing in drive current, which is
    /// what makes the Figure 8-c inversion well-posed.
    #[test]
    fn vcsel_dissipation_monotonic_in_current(
        t in 0.0f64..85.0,
        i1_ma in 0.1f64..19.0,
        delta_ma in 0.1f64..1.0,
    ) {
        let v = Vcsel::paper_default();
        let t = Celsius::new(t);
        let p1 = v.operating_point(Amperes::from_milliamperes(i1_ma), t).unwrap();
        let p2 = v.operating_point(Amperes::from_milliamperes(i1_ma + delta_ma), t).unwrap();
        prop_assert!(p2.dissipated_power > p1.dissipated_power);
    }

    /// The dissipated-power inversion is a true inverse wherever it
    /// succeeds.
    #[test]
    fn vcsel_inversion_round_trip(p_mw in 0.1f64..8.0, t in 10.0f64..75.0) {
        let v = Vcsel::paper_default();
        let t = Celsius::new(t);
        if let Ok(op) = v.operating_point_for_dissipated(Watts::from_milliwatts(p_mw), t) {
            prop_assert!((op.dissipated_power.as_milliwatts() - p_mw).abs() < 1e-6);
            let re = v.operating_point(op.current, t).unwrap();
            prop_assert!((re.optical_power.value() - op.optical_power.value()).abs() < 1e-15);
        }
    }

    /// Ring drop fraction is maximal on resonance, symmetric, and decays
    /// monotonically with detuning.
    #[test]
    fn ring_lorentzian_shape(d1 in 0.0f64..5.0, d2 in 0.0f64..5.0) {
        let r = MicroringResonator::paper_default(Nanometers::new(1550.0));
        let (near, far) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(
            r.drop_fraction(Nanometers::new(near)) >= r.drop_fraction(Nanometers::new(far))
        );
        prop_assert!(
            (r.drop_fraction(Nanometers::new(d1)) - r.drop_fraction(Nanometers::new(-d1))).abs()
                < 1e-15
        );
    }

    /// Ring resonance drift is linear in temperature.
    #[test]
    fn ring_drift_linearity(t1 in 0.0f64..100.0, t2 in 0.0f64..100.0) {
        let r = MicroringResonator::paper_default(Nanometers::new(1550.0));
        let d = r.resonance_at(Celsius::new(t2)) - r.resonance_at(Celsius::new(t1));
        prop_assert!((d.value() - 0.1 * (t2 - t1)).abs() < 1e-9);
    }

    /// Waveguide transmission is multiplicative over concatenated spans.
    #[test]
    fn waveguide_multiplicativity(l1_mm in 0.1f64..50.0, l2_mm in 0.1f64..50.0) {
        let wg = Waveguide::paper_default();
        let t1 = wg.transmission_over(Meters::from_millimeters(l1_mm));
        let t2 = wg.transmission_over(Meters::from_millimeters(l2_mm));
        let t12 = wg.transmission_over(Meters::from_millimeters(l1_mm + l2_mm));
        prop_assert!((t1 * t2 - t12).abs() < 1e-12);
    }

    /// Detection is monotone: more power never becomes undetectable.
    #[test]
    fn detection_monotonic(p1_uw in 0.0f64..1000.0, extra_uw in 0.0f64..1000.0) {
        let pd = Photodetector::paper_default();
        let low = Watts::from_microwatts(p1_uw);
        let high = Watts::from_microwatts(p1_uw + extra_uw);
        if pd.detects(low) {
            prop_assert!(pd.detects(high));
        }
        prop_assert!(pd.margin(high) >= pd.margin(low) - 1e-12);
    }

    /// Sensitivity threshold is exactly -20 dBm.
    #[test]
    fn sensitivity_threshold_exact(margin_db in -20.0f64..20.0) {
        let pd = Photodetector::paper_default();
        let p = Dbm::new(-20.0 + margin_db).to_watts();
        prop_assert_eq!(pd.detects(p), margin_db >= -1e-12);
    }
}
