//! Property tests on the link-quality extensions: FSR comb, BER model,
//! effective bandwidth and the microdisk comparison laser.

use proptest::prelude::*;
use vcsel_photonics::{
    BerModel, Laser, LinkReliability, MicrodiskLaser, MicroringResonator, PeriodicRing,
    RingGeometry, Vcsel,
};
use vcsel_units::{Amperes, Celsius, Meters, Nanometers, Watts};

fn paper_ring() -> PeriodicRing {
    PeriodicRing::new(
        MicroringResonator::paper_default(Nanometers::new(1550.0)),
        RingGeometry::paper_default(),
    )
}

proptest! {
    /// The folded response is periodic in the FSR and symmetric in sign.
    #[test]
    fn periodic_ring_is_periodic_and_even(delta in -60.0f64..60.0, orders in -3i32..=3) {
        let ring = paper_ring();
        let fsr = ring.fsr().value();
        let base = ring.drop_fraction(Nanometers::new(delta));
        let shifted = ring.drop_fraction(Nanometers::new(delta + f64::from(orders) * fsr));
        prop_assert!((base - shifted).abs() < 1e-9, "period violated at {delta}");
        let mirrored = ring.drop_fraction(Nanometers::new(-delta));
        prop_assert!((base - mirrored).abs() < 1e-12, "symmetry violated at {delta}");
    }

    /// Drop + through conserve power for every folded detuning.
    #[test]
    fn periodic_ring_conserves_power(delta in -60.0f64..60.0) {
        let ring = paper_ring();
        let total = ring.drop_fraction(Nanometers::new(delta))
            + ring.through_fraction(Nanometers::new(delta));
        prop_assert!((total - 1.0).abs() < 1e-12);
    }

    /// FSR shrinks as rings grow: a bigger ring packs resonances tighter.
    #[test]
    fn fsr_decreases_with_radius(r_um in 2.0f64..30.0, extra_um in 0.5f64..10.0) {
        let small = RingGeometry::new(Meters::from_micrometers(r_um), 4.3).unwrap();
        let large = RingGeometry::new(Meters::from_micrometers(r_um + extra_um), 4.3).unwrap();
        let lambda = Nanometers::new(1550.0);
        prop_assert!(large.fsr(lambda).value() < small.fsr(lambda).value());
    }

    /// BER is monotone non-increasing in SNR and always a probability.
    #[test]
    fn ber_monotone_in_snr(snr_db in -10.0f64..60.0, extra_db in 0.0f64..20.0) {
        let m = BerModel::ook();
        let worse = m.ber_from_snr_db(snr_db);
        let better = m.ber_from_snr_db(snr_db + extra_db);
        prop_assert!((0.0..=0.5).contains(&worse));
        prop_assert!(better <= worse + 1e-15);
    }

    /// required_snr_db inverts ber_from_snr_db on the achievable range.
    #[test]
    fn ber_inversion_round_trips(exponent in 1.0f64..14.0) {
        let target = 10f64.powf(-exponent);
        let m = BerModel::ook();
        let snr = m.required_snr_db(target).unwrap();
        let back = m.ber_from_snr_db(snr);
        prop_assert!(((back - target) / target).abs() < 1e-4, "{back} vs {target}");
    }

    /// Effective bandwidth is bounded by the raw rate, decreasing in BER,
    /// and consistent with the expected-emissions count.
    #[test]
    fn effective_bandwidth_sane(ber_exp in 1.0f64..16.0, bits in 1u32..8192) {
        let ber = 10f64.powf(-ber_exp);
        let link = LinkReliability::new(12e9, bits).unwrap();
        let eff = link.effective_bandwidth_hz(ber);
        prop_assert!((0.0..=12e9).contains(&eff));
        let n = link.expected_emissions(ber);
        prop_assert!(n >= 1.0);
        prop_assert!((n * link.bandwidth_efficiency(ber) - 1.0).abs() < 1e-9);
        // More bits per packet can only hurt.
        if bits < 8192 {
            let longer = LinkReliability::new(12e9, bits + 1).unwrap();
            prop_assert!(longer.effective_bandwidth_hz(ber) <= eff + 1e-3);
        }
    }

    /// The microdisk respects energy conservation at every valid point.
    #[test]
    fn microdisk_energy_conserved(i_ma in 0.0f64..10.0, t in -10.0f64..100.0) {
        let d = MicrodiskLaser::van_campenhout();
        let op = d.operating_point(Amperes::from_milliamperes(i_ma), Celsius::new(t)).unwrap();
        prop_assert!(op.optical_power.value() <= op.electrical_power.value() + 1e-15);
        prop_assert!(op.optical_power.value() <= 0.12e-3 + 1e-12, "saturation cap");
    }

    /// Both laser families drift identically with temperature (0.1 nm/°C),
    /// so a common-mode shift never misaligns laser from ring.
    #[test]
    fn lasers_share_the_thermo_optic_slope(t1 in 0.0f64..80.0, dt in 0.0f64..20.0) {
        let v = Vcsel::paper_default();
        let d = MicrodiskLaser::van_campenhout();
        let a = Celsius::new(t1);
        let b = Celsius::new(t1 + dt);
        let v_shift = (Laser::wavelength(&v, b) - Laser::wavelength(&v, a)).value();
        let d_shift = (Laser::wavelength(&d, b) - Laser::wavelength(&d, a)).value();
        prop_assert!((v_shift - 0.1 * dt).abs() < 1e-9);
        prop_assert!((d_shift - 0.1 * dt).abs() < 1e-9);
    }

    /// Microdisk output power never grows when the disk heats up.
    #[test]
    fn microdisk_power_monotone_down_in_temperature(
        i_ma in 1.0f64..10.0,
        t in 0.0f64..70.0,
        dt in 0.0f64..30.0,
    ) {
        let d = MicrodiskLaser::van_campenhout();
        let i = Amperes::from_milliamperes(i_ma);
        let cool = Laser::optical_power(&d, i, Celsius::new(t));
        let hot = Laser::optical_power(&d, i, Celsius::new(t + dt));
        prop_assert!(hot.value() <= cool.value() + 1e-15);
    }

    /// Erfc-based Q inversion stays consistent with the special functions
    /// under composition with the dB conversion.
    #[test]
    fn snr_db_linear_consistency(snr_db in 0.0f64..50.0) {
        let m = BerModel::ook();
        let linear = 10f64.powf(snr_db / 10.0);
        let via_db = m.ber_from_snr_db(snr_db);
        let via_linear = m.ber_from_snr(linear);
        prop_assert!((via_db - via_linear).abs() <= 1e-15_f64.max(via_db * 1e-12));
    }
}

/// Non-proptest cross-check: the Watts newtype passes through the BER path
/// without unit confusion (regression guard for the report integration).
#[test]
fn report_integration_units() {
    let link = LinkReliability::paper_default();
    assert_eq!(link.raw_bandwidth_hz(), 12e9);
    assert_eq!(link.packet_bits(), 512);
    let _ = Watts::from_milliwatts(1.0); // keep the import exercised
}
