//! Property-based tests for the run-time management algorithms.

use proptest::prelude::*;
use vcsel_control::{
    allocate_jobs, dvfs_cap, migrate_workload, AllocationPolicy, InfluenceModel, Job, LumpedPlant,
    MigrationConfig, PiController, ThermalPlant,
};
use vcsel_units::{Celsius, Meters, Watts};

fn strip_model(tiles: usize) -> InfluenceModel {
    let onis = vec![
        [Meters::ZERO, Meters::ZERO],
        [Meters::from_millimeters(4.0 * (tiles - 1) as f64), Meters::ZERO],
    ];
    let tile_pos: Vec<[Meters; 2]> =
        (0..tiles).map(|k| [Meters::from_millimeters(4.0 * k as f64), Meters::ZERO]).collect();
    InfluenceModel::from_geometry(
        &onis,
        &tile_pos,
        Celsius::new(45.0),
        0.5,
        Meters::from_millimeters(2.0),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The plant never cools below ambient under non-negative inputs.
    #[test]
    fn plant_stays_at_or_above_ambient(
        p0 in 0.0..5.0f64,
        p1 in 0.0..5.0f64,
        dt in 1e-3..0.5f64,
        steps in 1usize..50,
    ) {
        let mut plant = LumpedPlant::builder(Celsius::new(40.0))
            .node(1e-3, 1e-3)
            .node(1e-3, 1e-3)
            .couple(0, 1, 5e-4)
            .build()
            .unwrap();
        let powers = [Watts::from_milliwatts(p0), Watts::from_milliwatts(p1)];
        for _ in 0..steps {
            let t = plant.step(&powers, dt).unwrap();
            for ti in &t {
                prop_assert!(ti.value() >= 40.0 - 1e-9);
            }
        }
    }

    /// More input power never cools any node (monotonicity of the RC map).
    #[test]
    fn plant_steady_state_is_monotone_in_power(
        base in 0.0..3.0f64,
        extra in 0.0..3.0f64,
    ) {
        let plant = LumpedPlant::builder(Celsius::new(40.0))
            .nodes(3, 1e-3, 1e-3)
            .couple(0, 1, 5e-4)
            .couple(1, 2, 5e-4)
            .build()
            .unwrap();
        let lo = vec![Watts::from_milliwatts(base); 3];
        let hi = vec![Watts::from_milliwatts(base + extra); 3];
        let t_lo = plant.steady_state(&lo).unwrap();
        let t_hi = plant.steady_state(&hi).unwrap();
        for (a, b) in t_lo.iter().zip(&t_hi) {
            prop_assert!(b.value() >= a.value() - 1e-9);
        }
    }

    /// PI output always respects its clamps, whatever the error sequence.
    #[test]
    fn pi_output_always_clamped(errors in prop::collection::vec(-100.0..100.0f64, 1..200)) {
        let mut pi = PiController::new(1.5, 20.0, 0.0, 2.0).unwrap();
        for e in errors {
            let u = pi.update(e, 0.01);
            prop_assert!((0.0..=2.0).contains(&u), "u = {u}");
        }
    }

    /// Migration preserves total power and never increases the spread.
    #[test]
    fn migration_conserves_power_and_improves(
        raw in prop::collection::vec(0.0..8.0f64, 4),
    ) {
        let model = strip_model(4);
        let powers: Vec<Watts> = raw.iter().map(|&p| Watts::new(p)).collect();
        let total_in: f64 = raw.iter().sum();
        let cfg = MigrationConfig { max_moves: 400, ..MigrationConfig::default() };
        let r = migrate_workload(&model, &powers, &cfg).unwrap();
        let total_out: f64 = r.tile_powers.iter().map(|p| p.value()).sum();
        prop_assert!((total_in - total_out).abs() < 1e-6);
        prop_assert!(r.final_spread.value() <= r.initial_spread.value() + 1e-9);
        for p in &r.tile_powers {
            prop_assert!(p.value() >= -1e-12 && p.value() <= cfg.tile_cap.value() + 1e-9);
        }
    }

    /// DVFS returns a scale in (0, 1] and meets the limit whenever it
    /// succeeds.
    #[test]
    fn dvfs_scale_is_valid_and_limit_met(
        raw in prop::collection::vec(0.5..9.0f64, 4),
        headroom in 0.1..20.0f64,
    ) {
        let model = strip_model(4);
        let powers: Vec<Watts> = raw.iter().map(|&p| Watts::new(p)).collect();
        let uncapped = model.peak(&powers).unwrap();
        let limit = Celsius::new((uncapped.value() - headroom).max(45.5));
        if let Ok(r) = dvfs_cap(&model, &powers, limit) {
            prop_assert!(r.power_scale > 0.0 && r.power_scale <= 1.0);
            prop_assert!(r.frequency_scale >= r.power_scale - 1e-12);
            prop_assert!(r.peak.value() <= limit.value() + 1e-3);
        }
    }

    /// The thermally-aware allocator never produces a larger spread than
    /// row-major when both succeed on identical jobs.
    #[test]
    fn thermal_aware_allocation_weakly_dominates(
        raw in prop::collection::vec(0.5..4.0f64, 1..8),
    ) {
        let model = strip_model(4);
        let jobs: Vec<Job> =
            raw.iter().enumerate().map(|(id, &p)| Job { id, power: Watts::new(p) }).collect();
        let cap = Watts::new(20.0);
        let naive = allocate_jobs(&model, &jobs, cap, AllocationPolicy::RowMajor).unwrap();
        let smart = allocate_jobs(&model, &jobs, cap, AllocationPolicy::ThermalAware).unwrap();
        prop_assert!(
            smart.spread.value() <= naive.spread.value() + 1e-9,
            "smart {} > naive {}",
            smart.spread,
            naive.spread
        );
    }
}
