//! DVFS and workload-migration policies (paper reference \[16\]).
//!
//! The paper's Section II cites DVFS and workload migration as run-time
//! counter-measures against thermal drift. Both are implemented here on the
//! linear [`InfluenceModel`]:
//!
//! * [`dvfs_cap`] — scale every tile's power uniformly until the hottest
//!   ONI meets a temperature limit; reports the frequency (performance)
//!   cost under the cubic power-frequency law `P ∝ f³`,
//! * [`migrate_workload`] — move work between tiles, keeping total power
//!   constant, to shrink the inter-ONI temperature *spread* (the quantity
//!   that turns into wavelength misalignment and crosstalk).

use serde::{Deserialize, Serialize};
use vcsel_units::{Celsius, TemperatureDelta, Watts};

use crate::{ControlError, InfluenceModel};

/// Result of a uniform DVFS capping pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsResult {
    /// Power scale factor applied to every tile, in `(0, 1]`.
    pub power_scale: f64,
    /// Equivalent frequency scale under `P ∝ f³`, in `(0, 1]`.
    pub frequency_scale: f64,
    /// The capped tile powers.
    pub tile_powers: Vec<Watts>,
    /// Hottest ONI temperature after capping.
    pub peak: Celsius,
}

impl DvfsResult {
    /// Fractional performance loss `1 − frequency_scale`.
    pub fn performance_loss(&self) -> f64 {
        1.0 - self.frequency_scale
    }
}

/// Uniformly scales tile powers down until the hottest ONI is at or below
/// `limit`. Returns scale 1.0 when the limit already holds; errors when
/// even zero dynamic power (base temperatures alone) violates the limit.
///
/// # Errors
///
/// * [`ControlError::BadParameter`] when the limit is unreachable (base
///   temperature above the limit) or powers are invalid,
/// * [`ControlError::DimensionMismatch`] for a wrong-length power vector.
///
/// # Example
///
/// ```
/// use vcsel_control::{dvfs_cap, InfluenceModel};
/// use vcsel_units::{Celsius, Meters, Watts};
///
/// let onis = vec![[Meters::ZERO, Meters::ZERO]];
/// let tiles = vec![[Meters::ZERO, Meters::ZERO]];
/// let m = InfluenceModel::from_geometry(&onis, &tiles, Celsius::new(45.0), 1.0, Meters::from_millimeters(1.0))?;
/// // 20 W on the tile -> 65 °C; cap at 55 °C -> scale to 10 W.
/// let r = dvfs_cap(&m, &[Watts::new(20.0)], Celsius::new(55.0))?;
/// assert!((r.power_scale - 0.5).abs() < 1e-6);
/// # Ok::<(), vcsel_control::ControlError>(())
/// ```
pub fn dvfs_cap(
    model: &InfluenceModel,
    tile_powers: &[Watts],
    limit: Celsius,
) -> Result<DvfsResult, ControlError> {
    let base_peak = model.peak(&vec![Watts::ZERO; model.tile_count()])?;
    if base_peak.value() > limit.value() {
        return Err(ControlError::BadParameter {
            reason: format!(
                "limit {limit} is below the zero-power peak {base_peak}; DVFS cannot reach it"
            ),
        });
    }
    let peak = model.peak(tile_powers)?;
    if peak.value() <= limit.value() {
        return Ok(DvfsResult {
            power_scale: 1.0,
            frequency_scale: 1.0,
            tile_powers: tile_powers.to_vec(),
            peak,
        });
    }
    // Temperatures are affine in the uniform scale: solve directly.
    // peak(s) = base_peak_row + s·rise_row per ONI; take the max over ONIs
    // via bisection (the max of affine functions is convex, monotone in s).
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        let scaled: Vec<Watts> = tile_powers.iter().map(|&p| p * mid).collect();
        if model.peak(&scaled)?.value() > limit.value() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let s = lo;
    let scaled: Vec<Watts> = tile_powers.iter().map(|&p| p * s).collect();
    let peak = model.peak(&scaled)?;
    Ok(DvfsResult { power_scale: s, frequency_scale: s.cbrt(), tile_powers: scaled, peak })
}

/// Parameters of the greedy migration search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationConfig {
    /// Power quantum moved per step, W.
    pub quantum: Watts,
    /// Maximum number of moves.
    pub max_moves: usize,
    /// Per-tile power ceiling (thermal design power), W.
    pub tile_cap: Watts,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        Self { quantum: Watts::new(0.25), max_moves: 10_000, tile_cap: Watts::new(10.0) }
    }
}

/// Result of a workload-migration pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationResult {
    /// Tile powers after migration (total preserved).
    pub tile_powers: Vec<Watts>,
    /// Inter-ONI spread before.
    pub initial_spread: TemperatureDelta,
    /// Inter-ONI spread after.
    pub final_spread: TemperatureDelta,
    /// Moves actually performed.
    pub moves: usize,
}

/// Greedily migrates power quanta between tiles to minimize the inter-ONI
/// temperature spread, preserving total power and respecting per-tile caps.
///
/// Each move takes one `quantum` from some source tile to some destination
/// tile, choosing the pair that yields the largest spread reduction;
/// terminates when no move improves the spread or `max_moves` is reached.
///
/// # Errors
///
/// * [`ControlError::DimensionMismatch`] for a wrong-length power vector,
/// * [`ControlError::BadParameter`] for invalid powers/config or when a
///   tile already exceeds the cap.
pub fn migrate_workload(
    model: &InfluenceModel,
    tile_powers: &[Watts],
    config: &MigrationConfig,
) -> Result<MigrationResult, ControlError> {
    if tile_powers.len() != model.tile_count() {
        return Err(ControlError::DimensionMismatch {
            what: "tile powers",
            expected: model.tile_count(),
            got: tile_powers.len(),
        });
    }
    if !(config.quantum.value() > 0.0) || !(config.tile_cap.value() > 0.0) {
        return Err(ControlError::BadParameter {
            reason: "migration quantum and tile cap must be positive".into(),
        });
    }
    if tile_powers.iter().any(|p| p.value() > config.tile_cap.value() + 1e-12) {
        return Err(ControlError::BadParameter {
            reason: "a tile already exceeds the cap; migration preserves caps, not fixes them"
                .into(),
        });
    }

    let mut powers: Vec<f64> = tile_powers.iter().map(|p| p.value()).collect();
    let initial_spread = model.spread(tile_powers)?;
    let mut current = initial_spread.value();
    let q = config.quantum.value();
    let cap = config.tile_cap.value();
    let mut moves = 0usize;

    while moves < config.max_moves {
        // Evaluate all (src, dst) single-quantum moves; keep the best.
        let mut best: Option<(usize, usize, f64)> = None;
        for src in 0..powers.len() {
            if powers[src] < q - 1e-15 {
                continue;
            }
            for dst in 0..powers.len() {
                if dst == src || powers[dst] + q > cap + 1e-15 {
                    continue;
                }
                powers[src] -= q;
                powers[dst] += q;
                let sp = model
                    .spread(&powers.iter().map(|&p| Watts::new(p.max(0.0))).collect::<Vec<_>>())?
                    .value();
                powers[src] += q;
                powers[dst] -= q;
                if sp < current - 1e-12 && best.is_none_or(|(_, _, b)| sp < b) {
                    best = Some((src, dst, sp));
                }
            }
        }
        match best {
            Some((src, dst, sp)) => {
                powers[src] -= q;
                powers[dst] += q;
                current = sp;
                moves += 1;
            }
            None => break,
        }
    }

    Ok(MigrationResult {
        tile_powers: powers.into_iter().map(|p| Watts::new(p.max(0.0))).collect(),
        initial_spread,
        final_spread: TemperatureDelta::new(current),
        moves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsel_units::Meters;

    /// 2 ONIs at the ends of a 4-tile strip — the canonical asymmetric case.
    fn strip() -> InfluenceModel {
        let onis =
            vec![[Meters::ZERO, Meters::ZERO], [Meters::from_millimeters(12.0), Meters::ZERO]];
        let tiles: Vec<[Meters; 2]> =
            (0..4).map(|k| [Meters::from_millimeters(4.0 * k as f64), Meters::ZERO]).collect();
        InfluenceModel::from_geometry(
            &onis,
            &tiles,
            Celsius::new(45.0),
            0.5,
            Meters::from_millimeters(2.0),
        )
        .unwrap()
    }

    #[test]
    fn dvfs_cap_hits_the_limit_exactly() {
        let m = strip();
        let powers = vec![Watts::new(8.0); 4];
        let uncapped = m.peak(&powers).unwrap();
        let limit = Celsius::new(uncapped.value() - 2.0);
        let r = dvfs_cap(&m, &powers, limit).unwrap();
        assert!(r.power_scale < 1.0);
        assert!((r.peak.value() - limit.value()).abs() < 1e-3, "peak {} limit {limit}", r.peak);
        // Cubic law: frequency loss is milder than power loss.
        assert!(r.frequency_scale > r.power_scale);
        assert!(r.performance_loss() > 0.0);
    }

    #[test]
    fn dvfs_noop_when_already_cool() {
        let m = strip();
        let powers = vec![Watts::new(0.1); 4];
        let r = dvfs_cap(&m, &powers, Celsius::new(200.0)).unwrap();
        assert_eq!(r.power_scale, 1.0);
        assert_eq!(r.frequency_scale, 1.0);
        assert_eq!(r.performance_loss(), 0.0);
    }

    #[test]
    fn dvfs_rejects_unreachable_limit() {
        let m = strip();
        assert!(dvfs_cap(&m, &[Watts::new(1.0); 4], Celsius::new(10.0)).is_err());
    }

    #[test]
    fn migration_balances_a_skewed_load() {
        let m = strip();
        // All power near ONI 0: large spread.
        let powers = vec![Watts::new(8.0), Watts::new(8.0), Watts::ZERO, Watts::ZERO];
        let r = migrate_workload(&m, &powers, &MigrationConfig::default()).unwrap();
        assert!(
            r.final_spread.value() < 0.2 * r.initial_spread.value(),
            "spread {} -> {} insufficient",
            r.initial_spread,
            r.final_spread
        );
        // Total power preserved.
        let total: f64 = r.tile_powers.iter().map(|p| p.value()).sum();
        assert!((total - 16.0).abs() < 1e-9);
        assert!(r.moves > 0);
    }

    #[test]
    fn migration_respects_tile_caps() {
        let m = strip();
        let powers = vec![Watts::new(9.0), Watts::new(9.0), Watts::ZERO, Watts::ZERO];
        let cfg = MigrationConfig { tile_cap: Watts::new(9.5), ..MigrationConfig::default() };
        let r = migrate_workload(&m, &powers, &cfg).unwrap();
        for p in &r.tile_powers {
            assert!(p.value() <= 9.5 + 1e-9, "tile exceeds cap: {p}");
        }
    }

    #[test]
    fn migration_is_a_noop_on_balanced_load() {
        let m = strip();
        let powers = vec![Watts::new(4.0); 4];
        let r = migrate_workload(&m, &powers, &MigrationConfig::default()).unwrap();
        // Symmetric load on symmetric geometry: nothing to improve.
        assert_eq!(r.moves, 0);
        assert!((r.final_spread.value() - r.initial_spread.value()).abs() < 1e-12);
    }

    #[test]
    fn migration_never_worsens_spread() {
        let m = strip();
        for seed in 0..5u64 {
            // Deterministic pseudo-random loads without rand: hash the seed.
            let powers: Vec<Watts> = (0..4u64)
                .map(|k| Watts::new(((seed * 2_654_435_761 + k * 40_503) % 700) as f64 / 100.0))
                .collect();
            let r = migrate_workload(&m, &powers, &MigrationConfig::default()).unwrap();
            assert!(
                r.final_spread.value() <= r.initial_spread.value() + 1e-12,
                "seed {seed}: worsened"
            );
        }
    }

    #[test]
    fn validation() {
        let m = strip();
        assert!(migrate_workload(&m, &[Watts::new(1.0)], &MigrationConfig::default()).is_err());
        let bad = MigrationConfig { quantum: Watts::ZERO, ..MigrationConfig::default() };
        assert!(migrate_workload(&m, &[Watts::new(1.0); 4], &bad).is_err());
        let over = vec![Watts::new(99.0); 4];
        assert!(migrate_workload(&m, &over, &MigrationConfig::default()).is_err());
    }
}
