//! Linear tile-power → ONI-temperature influence model.
//!
//! Steady-state heat conduction is linear, so the temperature of ONI `o`
//! under per-tile powers `p` is affine:
//!
//! ```text
//! T_o = T_base,o + Σ_t  A[o][t] · p_t
//! ```
//!
//! The full FVM simulator *is* that map evaluated exactly; the run-time
//! policies (DVFS, migration, job allocation) need to query it thousands of
//! times inside inner loops, so they work on this explicit matrix instead.
//! The matrix can be calibrated from any oracle — one FVM solve per tile —
//! via [`InfluenceModel::calibrate`], or built synthetically from floorplan
//! geometry via [`InfluenceModel::from_geometry`] (a constriction-spreading
//! kernel: influence decays with lateral distance).

use serde::{Deserialize, Serialize};
use vcsel_thermal::{Design, MeshSpec, SolveContext};
use vcsel_units::{Celsius, Meters, TemperatureDelta, Watts};

use crate::ControlError;

/// An affine map from tile powers to ONI temperatures.
///
/// # Example
///
/// ```
/// use vcsel_control::InfluenceModel;
/// use vcsel_units::{Celsius, Meters, Watts};
///
/// // 2 ONIs over a 4-tile strip.
/// let onis = vec![[Meters::ZERO, Meters::ZERO], [Meters::from_millimeters(12.0), Meters::ZERO]];
/// let tiles: Vec<[Meters; 2]> = (0..4)
///     .map(|k| [Meters::from_millimeters(4.0 * k as f64), Meters::ZERO])
///     .collect();
/// let model = InfluenceModel::from_geometry(&onis, &tiles, Celsius::new(45.0), 0.5, Meters::from_millimeters(2.0))?;
/// let temps = model.temperatures(&vec![Watts::new(5.0); 4])?;
/// assert_eq!(temps.len(), 2);
/// # Ok::<(), vcsel_control::ControlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InfluenceModel {
    /// Base (zero-power) temperature per ONI, °C.
    base: Vec<f64>,
    /// `matrix[o][t]` = °C of ONI `o` rise per watt in tile `t`.
    matrix: Vec<Vec<f64>>,
}

impl InfluenceModel {
    /// Builds a model from an explicit base vector and influence matrix
    /// (`matrix[o][t]` in °C/W).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::BadParameter`] for empty or ragged input,
    /// negative influence entries, or non-finite values.
    pub fn new(base: Vec<Celsius>, matrix: Vec<Vec<f64>>) -> Result<Self, ControlError> {
        if base.is_empty() || matrix.len() != base.len() {
            return Err(ControlError::BadParameter {
                reason: format!(
                    "need one matrix row per ONI, got {} rows for {} ONIs",
                    matrix.len(),
                    base.len()
                ),
            });
        }
        let tiles = matrix[0].len();
        if tiles == 0 {
            return Err(ControlError::BadParameter { reason: "need at least one tile".into() });
        }
        for (o, row) in matrix.iter().enumerate() {
            if row.len() != tiles {
                return Err(ControlError::BadParameter {
                    reason: format!(
                        "ragged matrix: row {o} has {} entries, expected {tiles}",
                        row.len()
                    ),
                });
            }
            if row.iter().any(|v| !v.is_finite() || *v < 0.0) {
                return Err(ControlError::BadParameter {
                    reason: format!("row {o} has a negative or non-finite influence"),
                });
            }
        }
        if base.iter().any(|t| !t.value().is_finite()) {
            return Err(ControlError::BadParameter {
                reason: "base temperatures must be finite".into(),
            });
        }
        Ok(Self { base: base.into_iter().map(|t| t.value()).collect(), matrix })
    }

    /// Builds the matrix from floorplan geometry with a spreading kernel:
    /// `A[o][t] = k / (1 + d_ot / d0)` where `d_ot` is the lateral distance
    /// from ONI `o` to tile `t`, `k` the self-heating coefficient in °C/W
    /// and `d0` the spreading length.
    ///
    /// This reproduces the qualitative structure the FVM produces — nearby
    /// tiles dominate, far tiles still matter through the heat spreader —
    /// and is exact enough for policy studies; calibrate against the FVM
    /// via [`InfluenceModel::calibrate`] when absolute numbers matter.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::BadParameter`] for empty inputs or
    /// non-positive `k`/`d0`.
    pub fn from_geometry(
        onis: &[[Meters; 2]],
        tiles: &[[Meters; 2]],
        ambient: Celsius,
        k_c_per_w: f64,
        d0: Meters,
    ) -> Result<Self, ControlError> {
        if onis.is_empty() || tiles.is_empty() {
            return Err(ControlError::BadParameter {
                reason: "geometry needs at least one ONI and one tile".into(),
            });
        }
        if !(k_c_per_w > 0.0) || !k_c_per_w.is_finite() || !(d0.value() > 0.0) {
            return Err(ControlError::BadParameter {
                reason: "kernel needs positive k and d0".into(),
            });
        }
        let matrix = onis
            .iter()
            .map(|o| {
                tiles
                    .iter()
                    .map(|t| {
                        let dx = o[0].value() - t[0].value();
                        let dy = o[1].value() - t[1].value();
                        let d = (dx * dx + dy * dy).sqrt();
                        k_c_per_w / (1.0 + d / d0.value())
                    })
                    .collect()
            })
            .collect();
        Self::new(vec![ambient; onis.len()], matrix)
    }

    /// Calibrates the model against an arbitrary oracle (typically one FVM
    /// solve): `oracle(powers)` must return one temperature per ONI. Runs
    /// one zero-power query for the base plus one finite-difference query
    /// per tile at `probe` watts.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::BadParameter`] for a non-positive probe, and
    /// propagates oracle errors.
    pub fn calibrate<E>(
        tiles: usize,
        probe: Watts,
        mut oracle: impl FnMut(&[Watts]) -> Result<Vec<Celsius>, E>,
    ) -> Result<Self, ControlError>
    where
        ControlError: From<E>,
    {
        if tiles == 0 {
            return Err(ControlError::BadParameter { reason: "need at least one tile".into() });
        }
        if !(probe.value() > 0.0) {
            return Err(ControlError::BadParameter {
                reason: format!("probe power must be positive, got {probe}"),
            });
        }
        let zero = vec![Watts::ZERO; tiles];
        let base = oracle(&zero)?;
        let mut matrix = vec![vec![0.0; tiles]; base.len()];
        for t in 0..tiles {
            let mut powers = zero.clone();
            powers[t] = probe;
            let temps = oracle(&powers)?;
            if temps.len() != base.len() {
                return Err(ControlError::DimensionMismatch {
                    what: "oracle temperatures",
                    expected: base.len(),
                    got: temps.len(),
                });
            }
            for (o, (hot, cold)) in temps.iter().zip(&base).enumerate() {
                matrix[o][t] = (hot.value() - cold.value()).max(0.0) / probe.value();
            }
        }
        Self::new(base, matrix)
    }

    /// Calibrates the model directly against the FVM simulator, reusing
    /// **one** [`SolveContext`] for every tile solve.
    ///
    /// The generic [`InfluenceModel::calibrate`] re-runs whatever its
    /// oracle does — typically a full mesh + assembly + cold solve per
    /// tile. Here the system is assembled and IC(0)-factored once; each of
    /// the `1 + #tiles` solves only rebuilds the right-hand side and
    /// warm-starts from the previous field, which is exactly the multi-RHS
    /// shape influence calibration is.
    ///
    /// `tiles` names one power group of `design` per tile (each needs a
    /// positive reference power so the probe scale is well-defined);
    /// `probes` gives one measurement point per ONI. Groups of the design
    /// that are *not* tiles (e.g. a `"heater"` bank) stay at their
    /// reference power throughout, matching a calibration run on the live
    /// system.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::BadParameter`] for empty tiles/probes, a
    /// non-positive probe power, an unknown tile group, or a zero-power
    /// tile group; propagates meshing/assembly/solver failures.
    pub fn calibrate_fvm(
        design: &Design,
        spec: &MeshSpec,
        tiles: &[&str],
        probes: &[[Meters; 3]],
        probe: Watts,
    ) -> Result<Self, ControlError> {
        if tiles.is_empty() || probes.is_empty() {
            return Err(ControlError::BadParameter {
                reason: "FVM calibration needs at least one tile group and one probe".into(),
            });
        }
        if !(probe.value() > 0.0) {
            return Err(ControlError::BadParameter {
                reason: format!("probe power must be positive, got {probe}"),
            });
        }
        let mut ctx = SolveContext::new(design, spec)
            .map_err(|e| ControlError::BadParameter { reason: e.to_string() })?;
        let known = ctx.groups().iter().map(|g| g.to_string()).collect::<Vec<_>>();
        let mut scale_per_tile = Vec::with_capacity(tiles.len());
        for &tile in tiles {
            if !known.iter().any(|g| g == tile) {
                return Err(ControlError::BadParameter {
                    reason: format!("design has no power group '{tile}' (available: {known:?})"),
                });
            }
            let reference = design.group_power(tile);
            if !(reference.value() > 0.0) {
                return Err(ControlError::BadParameter {
                    reason: format!(
                        "tile group '{tile}' has reference power {reference}; calibration needs \
                         a positive reference to scale the probe against"
                    ),
                });
            }
            scale_per_tile.push(probe.value() / reference.value());
        }

        // Non-tile groups run at reference power for every solve; tiles are
        // individually stepped from 0 to the probe power.
        let mut scales: Vec<(&str, f64)> = known
            .iter()
            .filter(|g| !tiles.contains(&g.as_str()))
            .map(|g| (g.as_str(), 1.0))
            .collect();
        let first_tile = scales.len();
        scales.extend(tiles.iter().map(|&t| (t, 0.0)));

        let base = ctx
            .solve_probes(&scales, probes)
            .map_err(|e| ControlError::BadParameter { reason: e.to_string() })?;
        let mut matrix = vec![vec![0.0; tiles.len()]; probes.len()];
        for (t, &s) in scale_per_tile.iter().enumerate() {
            scales[first_tile + t].1 = s;
            let temps = ctx
                .solve_probes(&scales, probes)
                .map_err(|e| ControlError::BadParameter { reason: e.to_string() })?;
            scales[first_tile + t].1 = 0.0;
            for (o, (hot, cold)) in temps.iter().zip(&base).enumerate() {
                matrix[o][t] = (hot.value() - cold.value()).max(0.0) / probe.value();
            }
        }
        Self::new(base, matrix)
    }

    /// Number of ONIs (matrix rows).
    pub fn oni_count(&self) -> usize {
        self.base.len()
    }

    /// Number of tiles (matrix columns).
    pub fn tile_count(&self) -> usize {
        self.matrix[0].len()
    }

    /// Influence of tile `t` on ONI `o`, °C/W.
    ///
    /// # Panics
    ///
    /// Panics if `o` or `t` is out of range.
    pub fn influence(&self, o: usize, t: usize) -> f64 {
        self.matrix[o][t]
    }

    /// ONI temperatures under the given tile powers.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::DimensionMismatch`] unless one power per
    /// tile is supplied, [`ControlError::BadParameter`] for negative power.
    pub fn temperatures(&self, tile_powers: &[Watts]) -> Result<Vec<Celsius>, ControlError> {
        if tile_powers.len() != self.tile_count() {
            return Err(ControlError::DimensionMismatch {
                what: "tile powers",
                expected: self.tile_count(),
                got: tile_powers.len(),
            });
        }
        if tile_powers.iter().any(|p| p.value() < 0.0 || !p.value().is_finite()) {
            return Err(ControlError::BadParameter {
                reason: "tile powers must be non-negative and finite".into(),
            });
        }
        Ok(self
            .base
            .iter()
            .zip(&self.matrix)
            .map(|(&b, row)| {
                Celsius::new(
                    b + row.iter().zip(tile_powers).map(|(a, p)| a * p.value()).sum::<f64>(),
                )
            })
            .collect())
    }

    /// Max − min ONI temperature under the given tile powers — the
    /// inter-ONI spread that drives misalignment crosstalk.
    ///
    /// # Errors
    ///
    /// Same contract as [`InfluenceModel::temperatures`].
    pub fn spread(&self, tile_powers: &[Watts]) -> Result<TemperatureDelta, ControlError> {
        let temps = self.temperatures(tile_powers)?;
        let max = temps.iter().map(|t| t.value()).fold(f64::NEG_INFINITY, f64::max);
        let min = temps.iter().map(|t| t.value()).fold(f64::INFINITY, f64::min);
        Ok(TemperatureDelta::new(max - min))
    }

    /// The hottest ONI temperature under the given tile powers.
    ///
    /// # Errors
    ///
    /// Same contract as [`InfluenceModel::temperatures`].
    pub fn peak(&self, tile_powers: &[Watts]) -> Result<Celsius, ControlError> {
        let temps = self.temperatures(tile_powers)?;
        Ok(Celsius::new(temps.iter().map(|t| t.value()).fold(f64::NEG_INFINITY, f64::max)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip_model() -> InfluenceModel {
        let onis =
            vec![[Meters::ZERO, Meters::ZERO], [Meters::from_millimeters(12.0), Meters::ZERO]];
        let tiles: Vec<[Meters; 2]> =
            (0..4).map(|k| [Meters::from_millimeters(4.0 * k as f64), Meters::ZERO]).collect();
        InfluenceModel::from_geometry(
            &onis,
            &tiles,
            Celsius::new(45.0),
            0.5,
            Meters::from_millimeters(2.0),
        )
        .unwrap()
    }

    #[test]
    fn nearby_tiles_dominate() {
        let m = strip_model();
        // ONI 0 sits on tile 0: influence must decay with tile index.
        for t in 0..3 {
            assert!(m.influence(0, t) > m.influence(0, t + 1));
        }
        // And symmetrically for ONI 1 at the far end.
        for t in 0..3 {
            assert!(m.influence(1, t) < m.influence(1, t + 1));
        }
    }

    #[test]
    fn temperatures_are_affine() {
        let m = strip_model();
        let p1 = vec![Watts::new(2.0); 4];
        let p2 = vec![Watts::new(4.0); 4];
        let t0 = m.temperatures(&[Watts::ZERO; 4]).unwrap();
        let t1 = m.temperatures(&p1).unwrap();
        let t2 = m.temperatures(&p2).unwrap();
        for o in 0..2 {
            let rise1 = t1[o].value() - t0[o].value();
            let rise2 = t2[o].value() - t0[o].value();
            assert!((rise2 - 2.0 * rise1).abs() < 1e-12, "linearity violated");
        }
    }

    #[test]
    fn uniform_power_on_symmetric_geometry_has_zero_spread() {
        // Two ONIs placed symmetrically over the strip see equal uniform
        // heat.
        let onis = vec![
            [Meters::from_millimeters(2.0), Meters::ZERO],
            [Meters::from_millimeters(10.0), Meters::ZERO],
        ];
        let tiles: Vec<[Meters; 2]> =
            (0..4).map(|k| [Meters::from_millimeters(4.0 * k as f64), Meters::ZERO]).collect();
        let m = InfluenceModel::from_geometry(
            &onis,
            &tiles,
            Celsius::new(45.0),
            0.5,
            Meters::from_millimeters(2.0),
        )
        .unwrap();
        let spread = m.spread(&[Watts::new(3.0); 4]).unwrap();
        assert!(spread.value().abs() < 1e-12, "spread {spread}");
    }

    #[test]
    fn calibrate_recovers_a_linear_oracle() {
        // Oracle = a known affine map; calibration must reproduce it.
        let truth = strip_model();
        let m = InfluenceModel::calibrate(4, Watts::new(1.0), |p: &[Watts]| truth.temperatures(p))
            .unwrap();
        for o in 0..2 {
            for t in 0..4 {
                assert!(
                    (m.influence(o, t) - truth.influence(o, t)).abs() < 1e-9,
                    "mismatch at ({o}, {t})"
                );
            }
        }
    }

    mod fvm {
        use super::*;
        use vcsel_thermal::{Block, Boundary, BoundaryCondition, BoxRegion, Material, Simulator};
        use vcsel_units::WattsPerSquareMeterKelvin;

        fn mm(v: f64) -> Meters {
            Meters::from_millimeters(v)
        }

        /// Slab with two tile groups, one static block, and two probes.
        fn tiled_slab() -> (Design, MeshSpec, Vec<[Meters; 3]>) {
            let domain = BoxRegion::new([Meters::ZERO; 3], [mm(4.0), mm(2.0), mm(0.5)]).unwrap();
            let mut d = Design::new(domain, Material::SILICON).unwrap();
            d.set_boundary(
                Boundary::top(),
                BoundaryCondition::Convective {
                    h: WattsPerSquareMeterKelvin::new(5_000.0),
                    ambient: Celsius::new(45.0),
                },
            );
            let t0 =
                BoxRegion::new([mm(0.25), mm(0.5), Meters::ZERO], [mm(1.25), mm(1.5), mm(0.1)])
                    .unwrap();
            let t1 =
                BoxRegion::new([mm(2.75), mm(0.5), Meters::ZERO], [mm(3.75), mm(1.5), mm(0.1)])
                    .unwrap();
            let bg =
                BoxRegion::new([mm(1.75), mm(0.5), Meters::ZERO], [mm(2.25), mm(1.5), mm(0.1)])
                    .unwrap();
            d.add_block(
                Block::heat_source("t0", t0, Material::COPPER, Watts::new(0.25)).with_group("t0"),
            );
            d.add_block(
                Block::heat_source("t1", t1, Material::COPPER, Watts::new(0.25)).with_group("t1"),
            );
            d.add_block(Block::heat_source(
                "bg",
                bg,
                Material::COPPER,
                Watts::from_milliwatts(50.0),
            ));
            let probes = vec![[mm(0.75), mm(1.0), mm(0.05)], [mm(3.25), mm(1.0), mm(0.05)]];
            (d, MeshSpec::uniform(mm(0.25)), probes)
        }

        #[test]
        fn fvm_calibration_matches_the_generic_oracle() {
            let (design, spec, probes) = tiled_slab();
            let tiles = ["t0", "t1"];
            let probe = Watts::from_milliwatts(100.0);

            let fast = InfluenceModel::calibrate_fvm(&design, &spec, &tiles, &probes, probe)
                .expect("cached calibration");

            // Reference: the generic oracle path, one full solve per query.
            let sim = Simulator::new();
            let slow = InfluenceModel::calibrate(tiles.len(), probe, |powers: &[Watts]| {
                let mut d = design.clone();
                for (t, p) in tiles.iter().zip(powers) {
                    d.scale_group_power(t, p.value() / design.group_power(t).value());
                }
                let map = sim
                    .solve(&d, &spec)
                    .map_err(|e| ControlError::BadParameter { reason: e.to_string() })?;
                Ok::<_, ControlError>(
                    probes.iter().map(|&pt| map.temperature_at(pt).expect("probed")).collect(),
                )
            })
            .expect("oracle calibration");

            assert_eq!(fast.oni_count(), slow.oni_count());
            assert_eq!(fast.tile_count(), slow.tile_count());
            for o in 0..fast.oni_count() {
                for t in 0..fast.tile_count() {
                    assert!(
                        (fast.influence(o, t) - slow.influence(o, t)).abs() < 1e-5,
                        "mismatch at ({o}, {t}): {} vs {}",
                        fast.influence(o, t),
                        slow.influence(o, t)
                    );
                }
            }
            // Self-influence dominates cross-influence on this layout.
            assert!(fast.influence(0, 0) > fast.influence(0, 1));
            assert!(fast.influence(1, 1) > fast.influence(1, 0));
        }

        #[test]
        fn fvm_calibration_validation() {
            let (design, spec, probes) = tiled_slab();
            let w = Watts::from_milliwatts(100.0);
            assert!(InfluenceModel::calibrate_fvm(&design, &spec, &[], &probes, w).is_err());
            assert!(InfluenceModel::calibrate_fvm(&design, &spec, &["t0"], &[], w).is_err());
            assert!(InfluenceModel::calibrate_fvm(&design, &spec, &["t0"], &probes, Watts::ZERO)
                .is_err());
            assert!(InfluenceModel::calibrate_fvm(&design, &spec, &["nope"], &probes, w).is_err());
            let outside = vec![[mm(99.0), mm(0.0), mm(0.0)]];
            assert!(InfluenceModel::calibrate_fvm(&design, &spec, &["t0"], &outside, w).is_err());
        }
    }

    #[test]
    fn validation() {
        assert!(InfluenceModel::new(vec![], vec![]).is_err());
        assert!(InfluenceModel::new(vec![Celsius::new(40.0)], vec![vec![]]).is_err());
        assert!(InfluenceModel::new(vec![Celsius::new(40.0)], vec![vec![1.0], vec![1.0]]).is_err());
        assert!(InfluenceModel::new(vec![Celsius::new(40.0)], vec![vec![-1.0]]).is_err());
        let m = strip_model();
        assert!(m.temperatures(&[Watts::new(1.0)]).is_err());
        assert!(m.temperatures(&[Watts::new(-1.0); 4]).is_err());
    }
}
