//! Error type for the run-time management algorithms.

use core::fmt;

/// Errors produced by the run-time thermal-management algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ControlError {
    /// A configuration parameter is outside its valid range.
    BadParameter {
        /// Explanation of what is wrong.
        reason: String,
    },
    /// Input arrays have inconsistent lengths.
    DimensionMismatch {
        /// What was mismatched.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// An underlying network analysis failed.
    Network(vcsel_network::NetworkError),
    /// An underlying numerical routine failed.
    Numerics(vcsel_numerics::NumericsError),
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadParameter { reason } => write!(f, "bad parameter: {reason}"),
            Self::DimensionMismatch { what, expected, got } => {
                write!(f, "dimension mismatch for {what}: expected {expected}, got {got}")
            }
            Self::Network(e) => write!(f, "network analysis failed: {e}"),
            Self::Numerics(e) => write!(f, "numerical routine failed: {e}"),
        }
    }
}

impl std::error::Error for ControlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Network(e) => Some(e),
            Self::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vcsel_network::NetworkError> for ControlError {
    fn from(e: vcsel_network::NetworkError) -> Self {
        Self::Network(e)
    }
}

impl From<vcsel_numerics::NumericsError> for ControlError {
    fn from(e: vcsel_numerics::NumericsError) -> Self {
        Self::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ControlError::BadParameter { reason: "negative gain".into() };
        assert!(e.to_string().contains("negative gain"));
        let e = ControlError::DimensionMismatch { what: "temps", expected: 4, got: 3 };
        assert!(e.to_string().contains("temps"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<ControlError>();
    }
}
