//! Full-FVM thermal plant: the controllers running on the real simulator.
//!
//! [`LumpedPlant`](crate::LumpedPlant) is fast enough for controller
//! tuning, but its RC coefficients are an abstraction. [`FvmPlant`] wraps
//! the thermal crate's [`TransientStepper`] instead: every control step is
//! one backward-Euler solve of the full finite-volume field, each
//! controlled node maps to a named power *group* of the design (its heater
//! blocks), and each node's measurement is the temperature at a probe
//! point. This is the configuration the paper's Section III-B worries
//! about — "heating latency" measured on real conduction physics rather
//! than on a compact model.

use vcsel_thermal::{Design, MeshSpec, TransientStepper};
use vcsel_units::{Celsius, Meters, Watts};

use crate::{ControlError, ThermalPlant};

/// One controlled/observed site of an [`FvmPlant`].
#[derive(Debug, Clone)]
pub struct FvmNode {
    /// Power group (of the [`Design`]) this node's actuator drives.
    pub group: String,
    /// The group's total reference power (scale 1.0), used to convert the
    /// controller's watts into a group scale.
    pub reference: Watts,
    /// Probe location whose cell temperature is the node's measurement.
    pub probe: [Meters; 3],
}

/// A [`ThermalPlant`] backed by the finite-volume transient stepper.
///
/// # Example
///
/// ```no_run
/// use vcsel_control::{FvmNode, FvmPlant, ThermalPlant};
/// use vcsel_thermal::{Design, MeshSpec};
/// use vcsel_units::{Celsius, Meters, Watts};
/// # fn get(_: ()) -> (Design, MeshSpec) { unimplemented!() }
/// # let (design, spec) = get(());
/// let nodes = vec![FvmNode {
///     group: "heater0".into(),
///     reference: Watts::from_milliwatts(1.0),
///     probe: [Meters::ZERO, Meters::ZERO, Meters::ZERO],
/// }];
/// let mut plant = FvmPlant::new(&design, &spec, Celsius::new(40.0), 1e-3, nodes)?;
/// let temps = plant.step(&[Watts::from_milliwatts(0.5)], 1e-3)?;
/// println!("ring probe: {}", temps[0]);
/// # Ok::<(), vcsel_control::ControlError>(())
/// ```
#[derive(Debug)]
pub struct FvmPlant {
    stepper: TransientStepper,
    nodes: Vec<FvmNode>,
    dt_s: f64,
}

impl FvmPlant {
    /// Builds the plant. `dt_s` is fixed at construction (the stepper's
    /// system matrix embeds it); [`ThermalPlant::step`] must be called with
    /// the same value.
    ///
    /// # Errors
    ///
    /// * [`ControlError::BadParameter`] for an empty node list, a node
    ///   whose group does not exist in the design, a non-positive reference
    ///   power, or a probe outside the domain,
    /// * assembly/meshing failures from the thermal crate.
    pub fn new(
        design: &Design,
        spec: &MeshSpec,
        initial: Celsius,
        dt_s: f64,
        nodes: Vec<FvmNode>,
    ) -> Result<Self, ControlError> {
        if nodes.is_empty() {
            return Err(ControlError::BadParameter {
                reason: "FVM plant needs at least one node".into(),
            });
        }
        let stepper = TransientStepper::new(design, spec, initial, dt_s)
            .map_err(|e| ControlError::BadParameter { reason: e.to_string() })?;
        let known = stepper.groups();
        for node in &nodes {
            if !known.contains(&node.group.as_str()) {
                return Err(ControlError::BadParameter {
                    reason: format!(
                        "design has no power group '{}' (available: {known:?})",
                        node.group
                    ),
                });
            }
            if !(node.reference.value() > 0.0) {
                return Err(ControlError::BadParameter {
                    reason: format!("node '{}' needs a positive reference power", node.group),
                });
            }
            if stepper.temperature_at(node.probe).is_none() {
                return Err(ControlError::BadParameter {
                    reason: format!("probe of node '{}' lies outside the domain", node.group),
                });
            }
        }
        Ok(Self { stepper, nodes, dt_s })
    }

    /// The fixed step size the plant was assembled for.
    pub fn dt_s(&self) -> f64 {
        self.dt_s
    }

    /// Read access to the underlying stepper (snapshots, elapsed time).
    pub fn stepper(&self) -> &TransientStepper {
        &self.stepper
    }
}

impl ThermalPlant for FvmPlant {
    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn step(&mut self, powers: &[Watts], dt_s: f64) -> Result<Vec<Celsius>, ControlError> {
        if powers.len() != self.nodes.len() {
            return Err(ControlError::DimensionMismatch {
                what: "node powers",
                expected: self.nodes.len(),
                got: powers.len(),
            });
        }
        if (dt_s - self.dt_s).abs() > 1e-12 * self.dt_s.max(1.0) {
            return Err(ControlError::BadParameter {
                reason: format!(
                    "FVM plant was assembled for dt = {} s, cannot step with {dt_s} s",
                    self.dt_s
                ),
            });
        }
        // Borrow the group names in place: every control step used to clone
        // one String per node, which adds up over thousand-step runs.
        let scales: Vec<(&str, f64)> = self
            .nodes
            .iter()
            .zip(powers)
            .map(|(node, p)| (node.group.as_str(), p.value() / node.reference.value()))
            .collect();
        self.stepper
            .step(&scales)
            .map_err(|e| ControlError::BadParameter { reason: e.to_string() })?;
        Ok(self.temperatures())
    }

    fn temperatures(&self) -> Vec<Celsius> {
        self.nodes
            .iter()
            .map(|n| self.stepper.temperature_at(n.probe).expect("validated at construction"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CalibrationConfig, CalibrationLoop};
    use vcsel_thermal::{Block, Boundary, BoundaryCondition, BoxRegion, Material};
    use vcsel_units::WattsPerSquareMeterKelvin;

    fn mm(v: f64) -> Meters {
        Meters::from_millimeters(v)
    }

    /// A 4 x 2 x 0.5 mm slab with two heater pads ("h0", "h1") and a static
    /// hot block between them (the "laser").
    fn two_heater_slab() -> (Design, MeshSpec, Vec<FvmNode>) {
        let domain = BoxRegion::new([Meters::ZERO; 3], [mm(4.0), mm(2.0), mm(0.5)]).unwrap();
        let mut d = Design::new(domain, Material::SILICON).unwrap();
        d.set_boundary(
            Boundary::top(),
            BoundaryCondition::Convective {
                h: WattsPerSquareMeterKelvin::new(5_000.0),
                ambient: Celsius::new(50.0),
            },
        );
        let h0 = BoxRegion::new([mm(0.25), mm(0.75), Meters::ZERO], [mm(0.75), mm(1.25), mm(0.1)])
            .unwrap();
        let h1 = BoxRegion::new([mm(3.25), mm(0.75), Meters::ZERO], [mm(3.75), mm(1.25), mm(0.1)])
            .unwrap();
        let laser =
            BoxRegion::new([mm(1.75), mm(0.75), Meters::ZERO], [mm(2.25), mm(1.25), mm(0.1)])
                .unwrap();
        d.add_block(
            Block::heat_source("h0", h0, Material::COPPER, Watts::from_milliwatts(1.0))
                .with_group("h0"),
        );
        d.add_block(
            Block::heat_source("h1", h1, Material::COPPER, Watts::from_milliwatts(1.0))
                .with_group("h1"),
        );
        d.add_block(Block::heat_source(
            "laser",
            laser,
            Material::COPPER,
            Watts::from_milliwatts(20.0),
        ));
        let nodes = vec![
            FvmNode {
                group: "h0".into(),
                reference: Watts::from_milliwatts(1.0),
                probe: [mm(0.5), mm(1.0), mm(0.05)],
            },
            FvmNode {
                group: "h1".into(),
                reference: Watts::from_milliwatts(1.0),
                probe: [mm(3.5), mm(1.0), mm(0.05)],
            },
        ];
        (d, MeshSpec::uniform(mm(0.25)), nodes)
    }

    #[test]
    fn stepping_heats_the_probes() {
        let (d, spec, nodes) = two_heater_slab();
        let mut plant = FvmPlant::new(&d, &spec, Celsius::new(50.0), 1e-2, nodes).unwrap();
        let dt = plant.dt_s();
        let p = vec![Watts::from_milliwatts(2.0); 2];
        let before = plant.temperatures();
        for _ in 0..20 {
            plant.step(&p, dt).unwrap();
        }
        let after = plant.temperatures();
        for (b, a) in before.iter().zip(&after) {
            assert!(a > b, "heater must heat its probe: {b} -> {a}");
        }
    }

    #[test]
    fn pi_loop_locks_on_the_real_fvm() {
        // The capstone: the [12]-style feedback loop regulating probe
        // temperatures on the full finite-volume field.
        let (d, spec, nodes) = two_heater_slab();
        let mut plant = FvmPlant::new(&d, &spec, Celsius::new(50.0), 5e-2, nodes).unwrap();
        // Let the static laser block establish its field first.
        for _ in 0..100 {
            plant.step(&[Watts::ZERO, Watts::ZERO], 5e-2).unwrap();
        }
        let passive = plant.temperatures();
        let target =
            Celsius::new(passive.iter().map(|t| t.value()).fold(f64::NEG_INFINITY, f64::max) + 1.0);

        let config = CalibrationConfig {
            kp_w_per_c: 2e-3,
            ki_w_per_c_s: 5e-3,
            max_heater: Watts::from_milliwatts(40.0),
            dt_s: 5e-2,
            max_steps: 4_000,
            tolerance_c: 0.05,
            hold_steps: 10,
        };
        let mut cal = CalibrationLoop::new(target, &[0, 1], config).unwrap();
        let outcome = cal.run(&mut plant).unwrap();
        assert!(
            outcome.locked,
            "loop must lock on the FVM plant (residual {:.3} °C)",
            outcome.residual_error_c
        );
        for slot in 0..2 {
            let t = plant.temperatures()[slot];
            assert!(
                (t.value() - target.value()).abs() < 0.1,
                "probe {slot} at {t}, target {target}"
            );
        }
        // Both heaters hold a strictly positive steady power.
        for p in &outcome.final_powers {
            assert!(p.value() > 0.0);
        }
    }

    #[test]
    fn validation() {
        let (d, spec, nodes) = two_heater_slab();
        assert!(FvmPlant::new(&d, &spec, Celsius::new(50.0), 1e-2, vec![]).is_err());
        let mut bad = nodes.clone();
        bad[0].group = "nope".into();
        assert!(FvmPlant::new(&d, &spec, Celsius::new(50.0), 1e-2, bad).is_err());
        let mut bad = nodes.clone();
        bad[0].reference = Watts::ZERO;
        assert!(FvmPlant::new(&d, &spec, Celsius::new(50.0), 1e-2, bad).is_err());
        let mut bad = nodes.clone();
        bad[0].probe = [mm(99.0), mm(0.0), mm(0.0)];
        assert!(FvmPlant::new(&d, &spec, Celsius::new(50.0), 1e-2, bad).is_err());

        let mut plant = FvmPlant::new(&d, &spec, Celsius::new(50.0), 1e-2, nodes).unwrap();
        // Wrong dt and wrong arity are rejected.
        assert!(plant.step(&[Watts::ZERO, Watts::ZERO], 2e-2).is_err());
        assert!(plant.step(&[Watts::ZERO], 1e-2).is_err());
    }
}
