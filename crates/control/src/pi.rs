//! Proportional-integral controller with actuator saturation.
//!
//! The thermal stabilization loop of Padmaraju et al. \[12\] locks a
//! microring to its channel by heating it under feedback. The controller
//! of record in that work (and in practically every thermal trimmer) is a
//! PI loop: proportional action for speed, integral action to null the
//! steady-state misalignment, output clamping because a resistive heater
//! can only *add* heat, and anti-windup so the integrator does not charge
//! while the actuator is pinned.

use serde::{Deserialize, Serialize};

use crate::ControlError;

/// A scalar PI controller with output clamping and conditional anti-windup.
///
/// # Example
///
/// ```
/// use vcsel_control::PiController;
///
/// // Drive a trivial first-order plant to a setpoint of 1.0.
/// let mut pi = PiController::new(2.0, 8.0, 0.0, 10.0)?;
/// let mut y = 0.0;
/// for _ in 0..200 {
///     let u = pi.update(1.0 - y, 0.01);
///     y += 0.01 * (u - y); // plant: dy/dt = u − y
/// }
/// assert!((y - 1.0).abs() < 0.02);
/// # Ok::<(), vcsel_control::ControlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiController {
    /// Proportional gain (output units per error unit).
    kp: f64,
    /// Integral gain (output units per error·second).
    ki: f64,
    /// Lower output clamp.
    u_min: f64,
    /// Upper output clamp.
    u_max: f64,
    /// Integrator state.
    integral: f64,
}

impl PiController {
    /// Creates a PI controller with gains `kp`, `ki` and output range
    /// `[u_min, u_max]`.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::BadParameter`] for non-finite or negative
    /// gains, or an empty output range.
    pub fn new(kp: f64, ki: f64, u_min: f64, u_max: f64) -> Result<Self, ControlError> {
        if !kp.is_finite() || kp < 0.0 || !ki.is_finite() || ki < 0.0 {
            return Err(ControlError::BadParameter {
                reason: format!("gains must be finite and non-negative, got kp={kp}, ki={ki}"),
            });
        }
        if kp == 0.0 && ki == 0.0 {
            return Err(ControlError::BadParameter {
                reason: "at least one of kp, ki must be positive".into(),
            });
        }
        if !(u_min < u_max) || !u_min.is_finite() || !u_max.is_finite() {
            return Err(ControlError::BadParameter {
                reason: format!("need a finite output range, got [{u_min}, {u_max}]"),
            });
        }
        Ok(Self { kp, ki, u_min, u_max, integral: 0.0 })
    }

    /// Advances the controller by `dt_s` seconds with the given error
    /// (setpoint − measurement) and returns the clamped actuation.
    ///
    /// Anti-windup is conditional integration: the integrator freezes when
    /// the output is saturated *and* the error pushes further into
    /// saturation.
    pub fn update(&mut self, error: f64, dt_s: f64) -> f64 {
        let dt = dt_s.max(0.0);
        let unclamped = self.kp * error + self.ki * (self.integral + error * dt);
        let saturated_high = unclamped > self.u_max && error > 0.0;
        let saturated_low = unclamped < self.u_min && error < 0.0;
        if !saturated_high && !saturated_low {
            self.integral += error * dt;
        }
        (self.kp * error + self.ki * self.integral).clamp(self.u_min, self.u_max)
    }

    /// Resets the integrator.
    pub fn reset(&mut self) {
        self.integral = 0.0;
    }

    /// Current integrator state (for diagnostics).
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// The output clamp range.
    pub fn output_range(&self) -> (f64, f64) {
        (self.u_min, self.u_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulates `dy/dt = (u − y)/τ` under the controller for `t_end`
    /// seconds and returns the final plant output.
    fn closed_loop(pi: &mut PiController, setpoint: f64, tau: f64, t_end: f64) -> f64 {
        let dt = tau / 100.0;
        let mut y = 0.0;
        let mut t = 0.0;
        while t < t_end {
            let u = pi.update(setpoint - y, dt);
            y += dt / tau * (u - y);
            t += dt;
        }
        y
    }

    #[test]
    fn integral_action_nulls_steady_state_error() {
        let mut pi = PiController::new(1.0, 5.0, 0.0, 100.0).unwrap();
        let y = closed_loop(&mut pi, 3.0, 0.5, 20.0);
        assert!((y - 3.0).abs() < 1e-3, "residual error: {}", (y - 3.0).abs());
    }

    #[test]
    fn pure_proportional_leaves_offset() {
        let mut pi = PiController::new(2.0, 0.0, 0.0, 100.0).unwrap();
        let y = closed_loop(&mut pi, 3.0, 0.5, 20.0);
        // P-only on a unity plant: y = kp(sp − y) ⇒ y = sp·kp/(1+kp) = 2.
        assert!((y - 2.0).abs() < 1e-2, "got {y}");
    }

    #[test]
    fn output_respects_clamps() {
        let mut pi = PiController::new(10.0, 50.0, 0.0, 1.0).unwrap();
        for _ in 0..100 {
            let u = pi.update(10.0, 0.01);
            assert!((0.0..=1.0).contains(&u));
        }
        // Heater cannot cool: large negative error still gives u >= 0.
        let u = pi.update(-100.0, 0.01);
        assert!(u >= 0.0);
    }

    #[test]
    fn anti_windup_recovers_quickly() {
        // Saturate hard, then reverse: with anti-windup the integrator does
        // not need to "discharge" a huge accumulated value.
        let mut with_aw = PiController::new(1.0, 10.0, 0.0, 1.0).unwrap();
        for _ in 0..1_000 {
            with_aw.update(5.0, 0.01); // pinned at u_max
        }
        let integral_at_release = with_aw.integral();
        // Integrator must not have grown far past what u_max supports.
        assert!(
            integral_at_release * 10.0 <= 1.0 + 5.0 + 1e-9,
            "integrator wound up to {integral_at_release}"
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut pi = PiController::new(1.0, 1.0, -1.0, 1.0).unwrap();
        pi.update(0.5, 1.0);
        assert!(pi.integral() != 0.0);
        pi.reset();
        assert_eq!(pi.integral(), 0.0);
    }

    #[test]
    fn validation() {
        assert!(PiController::new(-1.0, 1.0, 0.0, 1.0).is_err());
        assert!(PiController::new(1.0, f64::NAN, 0.0, 1.0).is_err());
        assert!(PiController::new(0.0, 0.0, 0.0, 1.0).is_err());
        assert!(PiController::new(1.0, 1.0, 1.0, 1.0).is_err());
        assert!(PiController::new(1.0, 1.0, 0.0, f64::INFINITY).is_err());
    }
}
