//! ONoC reconfiguration by channel remapping (paper reference \[15\]).
//!
//! Zhang et al. (JOCN 2012) recover SNR lost to thermal drift by remapping
//! communications onto different wavelength channels at run time. This
//! module implements that search on top of the ORNoC SNR analyzer: starting
//! from a feasible channel assignment, a local search swaps/moves channels
//! between communications — preserving ORNoC's segment-disjointness rule —
//! and keeps any move that raises the *worst-case* SNR under the current
//! temperature field.
//!
//! The search is deterministic (steepest-ascent over the full swap/move
//! neighborhood), so results are reproducible.

use serde::{Deserialize, Serialize};
use vcsel_network::{Communication, RingTopology, SnrAnalyzer};
use vcsel_units::{Celsius, Watts};

use crate::ControlError;

/// Result of a remapping search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RemapResult {
    /// The remapped communication set (same order as the input).
    pub comms: Vec<Communication>,
    /// Worst-case SNR of the starting assignment, dB. When the input used
    /// dead channels this is scored *after* the forced evacuation — an
    /// assignment driving dead hardware has no meaningful SNR to report.
    pub initial_worst_db: f64,
    /// Worst-case SNR after remapping, dB.
    pub final_worst_db: f64,
    /// Accepted search moves (excluding forced evacuations).
    pub moves: usize,
    /// Communications forcibly moved off dead channels before the search.
    pub evacuated: usize,
}

impl RemapResult {
    /// SNR gained by the remap, dB.
    pub fn gain_db(&self) -> f64 {
        self.final_worst_db - self.initial_worst_db
    }
}

/// Search limits for [`remap_channels`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemapConfig {
    /// Channels the search may use, `0..channel_budget` (ORNoC hardware
    /// provisions a fixed ring bank per ONI; \[15\] relies on such redundant
    /// resources).
    pub channel_budget: usize,
    /// Maximum accepted moves before the search stops.
    pub max_moves: usize,
    /// Bitmask of failed channels (bit `c` set = channel `c` is dead:
    /// its VCSEL group or ring bank has failed). Dead channels are never
    /// assigned, and input communications found on one are forcibly
    /// evacuated before the search. Covers channels 0–63, which bounds
    /// every ORNoC configuration in this repo.
    pub dead_channels: u64,
}

impl Default for RemapConfig {
    fn default() -> Self {
        Self { channel_budget: 8, max_moves: 200, dead_channels: 0 }
    }
}

impl RemapConfig {
    /// Marks `channel` dead (builder style). Channels ≥ 64 cannot be
    /// tracked and are ignored.
    #[must_use]
    pub fn with_dead_channel(mut self, channel: usize) -> Self {
        if channel < u64::BITS as usize {
            self.dead_channels |= 1 << channel;
        }
        self
    }

    /// Whether `channel` is marked dead.
    pub fn is_dead(&self, channel: usize) -> bool {
        channel < u64::BITS as usize && self.dead_channels & (1 << channel) != 0
    }
}

/// Hop segments occupied by a communication on the ring.
fn segments(topology: &RingTopology, c: &Communication) -> Vec<usize> {
    let n = topology.oni_count();
    let hops = topology.hops(c.source(), c.destination());
    (0..hops).map(|k| (c.source().index() + k) % n).collect()
}

/// Whether assigning `channel` to communication `idx` keeps the set
/// feasible (no two same-channel communications share a hop segment).
fn feasible(topology: &RingTopology, comms: &[Communication], idx: usize, channel: usize) -> bool {
    let mine = segments(topology, &comms[idx]);
    for (j, other) in comms.iter().enumerate() {
        if j == idx || other.channel() != channel {
            continue;
        }
        let theirs = segments(topology, other);
        if mine.iter().any(|s| theirs.contains(s)) {
            return false;
        }
    }
    true
}

fn with_channel(
    topology: &RingTopology,
    c: &Communication,
    channel: usize,
) -> Result<Communication, ControlError> {
    Ok(Communication::new(topology, c.source(), c.destination(), channel)?)
}

/// Remaps channels to maximize the worst-case SNR under the given
/// temperature field.
///
/// Steepest-ascent local search over two neighborhoods:
///
/// 1. **move** — re-assign one communication to any feasible channel within
///    the budget,
/// 2. **swap** — exchange the channels of two communications (when both
///    stay feasible).
///
/// Channels marked dead in [`RemapConfig::dead_channels`] are treated as
/// failed hardware: communications found on one are forcibly evacuated to
/// their best feasible live channel before the search starts, and the
/// search itself never assigns a dead channel.
///
/// # Errors
///
/// * [`ControlError::BadParameter`] when an input communication uses a
///   channel at or above the budget, the input set itself is infeasible,
///   or a dead-channel communication has no feasible live channel to
///   evacuate to,
/// * [`ControlError::DimensionMismatch`] via the analyzer for wrong-length
///   temperature/power arrays.
///
/// # Example
///
/// ```
/// use vcsel_control::{remap_channels, RemapConfig};
/// use vcsel_network::{assign_channels, traffic, RingTopology, SnrAnalyzer, WavelengthGrid};
/// use vcsel_units::{Celsius, Meters, Watts};
///
/// let topo = RingTopology::evenly_spaced(4, Meters::from_millimeters(18.0))?;
/// let comms = assign_channels(&topo, &traffic::all_to_all(4))?;
/// let analyzer = SnrAnalyzer::paper_default(WavelengthGrid::paper_default());
/// // A skewed thermal field (one hot corner).
/// let temps: Vec<Celsius> = (0..4).map(|i| Celsius::new(50.0 + 3.0 * i as f64)).collect();
/// let powers = vec![Watts::from_milliwatts(0.3); comms.len()];
/// let r = remap_channels(&topo, &comms, &temps, &powers, &analyzer, &RemapConfig::default())?;
/// assert!(r.final_worst_db >= r.initial_worst_db);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn remap_channels(
    topology: &RingTopology,
    comms: &[Communication],
    oni_temperatures: &[Celsius],
    injected_power: &[Watts],
    analyzer: &SnrAnalyzer,
    config: &RemapConfig,
) -> Result<RemapResult, ControlError> {
    if comms.is_empty() {
        return Ok(RemapResult {
            comms: Vec::new(),
            initial_worst_db: f64::INFINITY,
            final_worst_db: f64::INFINITY,
            moves: 0,
            evacuated: 0,
        });
    }
    for c in comms {
        if c.channel() >= config.channel_budget {
            return Err(ControlError::BadParameter {
                reason: format!(
                    "communication {c} uses channel {} outside the budget {}",
                    c.channel(),
                    config.channel_budget
                ),
            });
        }
    }
    // Input must itself be feasible (each comm compatible with the others).
    for idx in 0..comms.len() {
        if !feasible(topology, comms, idx, comms[idx].channel()) {
            return Err(ControlError::BadParameter {
                reason: "input channel assignment violates segment-disjointness".into(),
            });
        }
    }

    let score = |set: &[Communication]| -> Result<f64, ControlError> {
        Ok(analyzer.analyze(topology, set, oni_temperatures, injected_power)?.worst_snr_db())
    };

    let mut current: Vec<Communication> = comms.to_vec();

    // Evacuation pre-pass: communications sitting on dead channels are
    // moved to their best feasible live channel before any scoring — they
    // carry no light, so leaving them in place is not an option.
    let mut evacuated = 0usize;
    for idx in 0..current.len() {
        if !config.is_dead(current[idx].channel()) {
            continue;
        }
        let mut best: Option<(Vec<Communication>, f64)> = None;
        for ch in 0..config.channel_budget {
            if config.is_dead(ch) || !feasible(topology, &current, idx, ch) {
                continue;
            }
            let mut cand = current.clone();
            cand[idx] = with_channel(topology, &current[idx], ch)?;
            let s = score(&cand)?;
            if best.as_ref().is_none_or(|(_, b)| s > *b) {
                best = Some((cand, s));
            }
        }
        match best {
            Some((cand, _)) => {
                current = cand;
                evacuated += 1;
            }
            None => {
                return Err(ControlError::BadParameter {
                    reason: format!(
                        "communication {} sits on dead channel {} and no feasible live \
                         channel exists within the budget {}",
                        current[idx],
                        current[idx].channel(),
                        config.channel_budget
                    ),
                });
            }
        }
    }

    let initial_worst_db = score(&current)?;
    let mut best_score = initial_worst_db;
    let mut moves = 0usize;

    while moves < config.max_moves {
        let mut best_candidate: Option<(Vec<Communication>, f64)> = None;

        // Neighborhood 1: single-communication channel moves.
        for idx in 0..current.len() {
            for ch in 0..config.channel_budget {
                if ch == current[idx].channel()
                    || config.is_dead(ch)
                    || !feasible(topology, &current, idx, ch)
                {
                    continue;
                }
                let mut cand = current.clone();
                cand[idx] = with_channel(topology, &current[idx], ch)?;
                let s = score(&cand)?;
                if s > best_score + 1e-9 && best_candidate.as_ref().is_none_or(|(_, b)| s > *b) {
                    best_candidate = Some((cand, s));
                }
            }
        }

        // Neighborhood 2: pairwise channel swaps.
        for a in 0..current.len() {
            for b in (a + 1)..current.len() {
                let (ca, cb) = (current[a].channel(), current[b].channel());
                if ca == cb {
                    continue;
                }
                let mut cand = current.clone();
                cand[a] = with_channel(topology, &current[a], cb)?;
                cand[b] = with_channel(topology, &current[b], ca)?;
                if !feasible(topology, &cand, a, cb) || !feasible(topology, &cand, b, ca) {
                    continue;
                }
                let s = score(&cand)?;
                if s > best_score + 1e-9 && best_candidate.as_ref().is_none_or(|(_, b2)| s > *b2) {
                    best_candidate = Some((cand, s));
                }
            }
        }

        match best_candidate {
            Some((cand, s)) => {
                current = cand;
                best_score = s;
                moves += 1;
            }
            None => break,
        }
    }

    Ok(RemapResult {
        comms: current,
        initial_worst_db,
        final_worst_db: best_score,
        moves,
        evacuated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsel_network::{assign_channels, traffic, WavelengthGrid};
    use vcsel_units::Meters;

    fn setup(n: usize) -> (RingTopology, Vec<Communication>, SnrAnalyzer) {
        let topo = RingTopology::evenly_spaced(n, Meters::from_millimeters(18.0)).unwrap();
        let comms = assign_channels(&topo, &traffic::all_to_all(n)).unwrap();
        let analyzer = SnrAnalyzer::paper_default(WavelengthGrid::paper_default());
        (topo, comms, analyzer)
    }

    fn skewed_temps(n: usize) -> Vec<Celsius> {
        (0..n).map(|i| Celsius::new(50.0 + 4.0 * (i % 2) as f64 + 1.5 * i as f64)).collect()
    }

    #[test]
    fn remap_never_hurts() {
        let (topo, comms, analyzer) = setup(4);
        let temps = skewed_temps(4);
        let powers = vec![Watts::from_milliwatts(0.3); comms.len()];
        let r = remap_channels(&topo, &comms, &temps, &powers, &analyzer, &RemapConfig::default())
            .unwrap();
        assert!(r.final_worst_db >= r.initial_worst_db - 1e-12);
        assert!(r.gain_db() >= -1e-12);
    }

    #[test]
    fn remapped_set_stays_feasible_and_complete() {
        let (topo, comms, analyzer) = setup(5);
        let temps = skewed_temps(5);
        let powers = vec![Watts::from_milliwatts(0.3); comms.len()];
        // 5-ONI all-to-all needs 9 channels under first-fit; leave headroom.
        let config = RemapConfig { channel_budget: 12, max_moves: 50, ..Default::default() };
        let r = remap_channels(&topo, &comms, &temps, &powers, &analyzer, &config).unwrap();
        assert_eq!(r.comms.len(), comms.len());
        // Same (source, destination) pairs, order preserved.
        for (orig, new) in comms.iter().zip(&r.comms) {
            assert_eq!(orig.source(), new.source());
            assert_eq!(orig.destination(), new.destination());
        }
        // Feasibility of the output.
        for idx in 0..r.comms.len() {
            assert!(feasible(&topo, &r.comms, idx, r.comms[idx].channel()));
        }
    }

    #[test]
    fn spectral_headroom_is_exploited() {
        // Even with zero gradient, the greedy first-fit input packs
        // channels densely; extra channel budget lets the remap spread them
        // apart spectrally and reduce adjacent-channel crosstalk.
        let (topo, comms, analyzer) = setup(4);
        let temps = vec![Celsius::new(50.0); 4];
        let powers = vec![Watts::from_milliwatts(0.3); comms.len()];
        let roomy = RemapConfig { channel_budget: 10, max_moves: 100, ..Default::default() };
        let r = remap_channels(&topo, &comms, &temps, &powers, &analyzer, &roomy).unwrap();
        assert!(r.gain_db() >= 0.0);
        assert!(r.final_worst_db.is_finite());
    }

    #[test]
    fn search_is_deterministic() {
        let (topo, comms, analyzer) = setup(4);
        let temps = skewed_temps(4);
        let powers = vec![Watts::from_milliwatts(0.3); comms.len()];
        let cfg = RemapConfig::default();
        let a = remap_channels(&topo, &comms, &temps, &powers, &analyzer, &cfg).unwrap();
        let b = remap_channels(&topo, &comms, &temps, &powers, &analyzer, &cfg).unwrap();
        assert_eq!(a.final_worst_db, b.final_worst_db);
        assert_eq!(a.moves, b.moves);
        for (x, y) in a.comms.iter().zip(&b.comms) {
            assert_eq!(x.channel(), y.channel());
        }
    }

    #[test]
    fn budget_violations_are_rejected() {
        let (topo, comms, analyzer) = setup(4);
        let temps = vec![Celsius::new(50.0); 4];
        let powers = vec![Watts::from_milliwatts(0.3); comms.len()];
        let tight = RemapConfig { channel_budget: 1, max_moves: 10, ..Default::default() };
        // all_to_all on 4 ONIs needs ≥ 2 channels: input violates budget.
        assert!(remap_channels(&topo, &comms, &temps, &powers, &analyzer, &tight).is_err());
    }

    #[test]
    fn empty_input_is_fine() {
        let (topo, _, analyzer) = setup(4);
        let r = remap_channels(
            &topo,
            &[],
            &[Celsius::new(50.0); 4],
            &[],
            &analyzer,
            &RemapConfig::default(),
        )
        .unwrap();
        assert_eq!(r.moves, 0);
        assert!(r.comms.is_empty());
    }

    #[test]
    fn hot_channel_death_evacuates_and_gains() {
        // Kill the channel the hottest ONI transmits on: its comms must be
        // evacuated to live channels and the search must still end with a
        // non-negative, physically plausible gain.
        let (topo, comms, analyzer) = setup(4);
        let temps = skewed_temps(4);
        let powers = vec![Watts::from_milliwatts(0.3); comms.len()];
        let dead = comms[0].channel();
        let config = RemapConfig { channel_budget: 12, max_moves: 100, ..Default::default() }
            .with_dead_channel(dead);
        assert!(config.is_dead(dead));
        let r = remap_channels(&topo, &comms, &temps, &powers, &analyzer, &config).unwrap();
        assert!(r.evacuated >= 1, "at least comms[0] sat on the dead channel");
        assert!(r.comms.iter().all(|c| !config.is_dead(c.channel())), "no comm on a dead channel");
        assert!(r.gain_db() >= -1e-12, "gain must be non-negative, got {}", r.gain_db());
        assert!(r.gain_db() < 20.0, "gain must be physically bounded, got {}", r.gain_db());
        assert!(r.final_worst_db.is_finite());
        // Feasibility survives the evacuation + search.
        for idx in 0..r.comms.len() {
            assert!(feasible(&topo, &r.comms, idx, r.comms[idx].channel()));
        }
    }

    #[test]
    fn dead_wavelength_group_is_fully_evacuated() {
        // An entire wavelength group fails: every channel the first-fit
        // assignment used. The remap must rebuild the assignment on the
        // spare channels alone.
        let (topo, comms, analyzer) = setup(4);
        let temps = skewed_temps(4);
        let powers = vec![Watts::from_milliwatts(0.3); comms.len()];
        let used_max = comms.iter().map(|c| c.channel()).max().unwrap();
        let mut config = RemapConfig { channel_budget: 12, max_moves: 100, ..Default::default() };
        for ch in 0..=used_max {
            config = config.with_dead_channel(ch);
        }
        let r = remap_channels(&topo, &comms, &temps, &powers, &analyzer, &config).unwrap();
        assert_eq!(r.evacuated, comms.len(), "every comm sat in the dead group");
        assert!(r.comms.iter().all(|c| c.channel() > used_max));
        assert!(r.gain_db() >= -1e-12);
        assert!(r.gain_db() < 20.0);

        // With no spare capacity left, the evacuation must fail loudly.
        let all_dead = RemapConfig {
            channel_budget: used_max + 1,
            max_moves: 10,
            dead_channels: (1 << (used_max + 1)) - 1,
        };
        assert!(remap_channels(&topo, &comms, &temps, &powers, &analyzer, &all_dead).is_err());
    }

    #[test]
    fn healthy_hardware_is_a_no_op_for_the_fault_path() {
        // dead_channels = 0 must reproduce the plain search exactly.
        let (topo, comms, analyzer) = setup(4);
        let temps = skewed_temps(4);
        let powers = vec![Watts::from_milliwatts(0.3); comms.len()];
        let cfg = RemapConfig::default();
        let r = remap_channels(&topo, &comms, &temps, &powers, &analyzer, &cfg).unwrap();
        assert_eq!(r.evacuated, 0);
        assert!(r.gain_db() >= -1e-12);
        assert!(r.gain_db() < 20.0);
        let again = remap_channels(&topo, &comms, &temps, &powers, &analyzer, &cfg).unwrap();
        assert_eq!(r.final_worst_db, again.final_worst_db);
        for (x, y) in r.comms.iter().zip(&again.comms) {
            assert_eq!(x.channel(), y.channel());
        }
    }

    #[test]
    fn infeasible_input_is_rejected() {
        let (topo, _, analyzer) = setup(4);
        // Two overlapping arcs forced onto the same channel.
        let bad = vec![
            Communication::new(&topo, 0.into(), 2.into(), 0).unwrap(),
            Communication::new(&topo, 1.into(), 3.into(), 0).unwrap(),
        ];
        let temps = vec![Celsius::new(50.0); 4];
        let powers = vec![Watts::from_milliwatts(0.3); 2];
        assert!(remap_channels(&topo, &bad, &temps, &powers, &analyzer, &RemapConfig::default())
            .is_err());
    }
}
