//! Thermally-aware job allocation (paper reference \[14\]).
//!
//! Zhang et al. (DATE 2014) allocate jobs to cores so that the microrings
//! see minimal temperature gradients. This module reproduces that policy on
//! the [`InfluenceModel`]: jobs carry a power demand; each is placed on the
//! tile that minimizes the predicted inter-ONI spread given everything
//! placed so far. A naive row-major allocator is provided as the baseline
//! the thermally-aware policy is compared against.

use serde::{Deserialize, Serialize};
use vcsel_units::{TemperatureDelta, Watts};

use crate::{ControlError, InfluenceModel};

/// A job to place: an opaque id plus its steady power demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Caller-meaningful identifier (job index, task id, …).
    pub id: usize,
    /// Steady-state power the job dissipates on its tile.
    pub power: Watts,
}

/// Outcome of an allocation pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationResult {
    /// `assignment[j]` = tile hosting job `j` (input order).
    pub assignment: Vec<usize>,
    /// Resulting per-tile powers.
    pub tile_powers: Vec<Watts>,
    /// Inter-ONI temperature spread of the final placement.
    pub spread: TemperatureDelta,
}

/// Placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// Fill tiles in index order (the baseline schedulers use).
    RowMajor,
    /// Greedy thermally-aware placement minimizing the inter-ONI spread
    /// after each job (the \[14\] policy).
    ThermalAware,
}

/// Allocates `jobs` onto the model's tiles under the chosen policy.
///
/// Jobs are processed in descending power order (the classic greedy
/// bin-packing order) for [`AllocationPolicy::ThermalAware`], and in input
/// order for [`AllocationPolicy::RowMajor`]. Each tile may host multiple
/// jobs as long as its total stays below `tile_cap`.
///
/// # Errors
///
/// * [`ControlError::BadParameter`] for invalid job powers/caps or when a
///   job fits on no tile.
///
/// # Example
///
/// ```
/// use vcsel_control::{allocate_jobs, AllocationPolicy, InfluenceModel, Job};
/// use vcsel_units::{Celsius, Meters, Watts};
///
/// let onis = vec![[Meters::ZERO, Meters::ZERO], [Meters::from_millimeters(12.0), Meters::ZERO]];
/// let tiles: Vec<[Meters; 2]> = (0..4)
///     .map(|k| [Meters::from_millimeters(4.0 * k as f64), Meters::ZERO])
///     .collect();
/// let m = InfluenceModel::from_geometry(&onis, &tiles, Celsius::new(45.0), 0.5, Meters::from_millimeters(2.0))?;
/// let jobs: Vec<Job> = (0..4).map(|id| Job { id, power: Watts::new(3.0) }).collect();
/// let smart = allocate_jobs(&m, &jobs, Watts::new(10.0), AllocationPolicy::ThermalAware)?;
/// let naive = allocate_jobs(&m, &jobs, Watts::new(10.0), AllocationPolicy::RowMajor)?;
/// assert!(smart.spread.value() <= naive.spread.value());
/// # Ok::<(), vcsel_control::ControlError>(())
/// ```
pub fn allocate_jobs(
    model: &InfluenceModel,
    jobs: &[Job],
    tile_cap: Watts,
    policy: AllocationPolicy,
) -> Result<AllocationResult, ControlError> {
    if !(tile_cap.value() > 0.0) {
        return Err(ControlError::BadParameter {
            reason: format!("tile cap must be positive, got {tile_cap}"),
        });
    }
    for job in jobs {
        let p = job.power.value();
        if !(p >= 0.0) || !p.is_finite() {
            return Err(ControlError::BadParameter {
                reason: format!("job {} has invalid power", job.id),
            });
        }
        if p > tile_cap.value() {
            return Err(ControlError::BadParameter {
                reason: format!("job {} ({}) exceeds the tile cap {tile_cap}", job.id, job.power),
            });
        }
    }

    let tiles = model.tile_count();
    let mut powers = vec![0.0f64; tiles];
    let mut assignment = vec![usize::MAX; jobs.len()];

    // Processing order.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    if policy == AllocationPolicy::ThermalAware {
        order.sort_by(|&a, &b| {
            jobs[b].power.value().partial_cmp(&jobs[a].power.value()).expect("finite powers")
        });
    }

    for &j in &order {
        let p = jobs[j].power.value();
        let tile = match policy {
            AllocationPolicy::RowMajor => (0..tiles)
                .find(|&t| powers[t] + p <= tile_cap.value() + 1e-12)
                .ok_or_else(|| ControlError::BadParameter {
                    reason: format!("job {} fits on no tile under row-major fill", jobs[j].id),
                })?,
            AllocationPolicy::ThermalAware => {
                let mut best: Option<(usize, f64)> = None;
                for t in 0..tiles {
                    if powers[t] + p > tile_cap.value() + 1e-12 {
                        continue;
                    }
                    powers[t] += p;
                    let w: Vec<Watts> = powers.iter().map(|&v| Watts::new(v)).collect();
                    let spread = model.spread(&w)?.value();
                    powers[t] -= p;
                    if best.is_none_or(|(_, b)| spread < b) {
                        best = Some((t, spread));
                    }
                }
                best.ok_or_else(|| ControlError::BadParameter {
                    reason: format!("job {} fits on no tile", jobs[j].id),
                })?
                .0
            }
        };
        powers[tile] += p;
        assignment[j] = tile;
    }

    let tile_powers: Vec<Watts> = powers.into_iter().map(Watts::new).collect();
    let spread = model.spread(&tile_powers)?;
    Ok(AllocationResult { assignment, tile_powers, spread })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsel_units::{Celsius, Meters};

    fn strip() -> InfluenceModel {
        let onis =
            vec![[Meters::ZERO, Meters::ZERO], [Meters::from_millimeters(12.0), Meters::ZERO]];
        let tiles: Vec<[Meters; 2]> =
            (0..4).map(|k| [Meters::from_millimeters(4.0 * k as f64), Meters::ZERO]).collect();
        InfluenceModel::from_geometry(
            &onis,
            &tiles,
            Celsius::new(45.0),
            0.5,
            Meters::from_millimeters(2.0),
        )
        .unwrap()
    }

    fn jobs(powers: &[f64]) -> Vec<Job> {
        powers.iter().enumerate().map(|(id, &p)| Job { id, power: Watts::new(p) }).collect()
    }

    #[test]
    fn thermal_aware_beats_row_major_on_partial_load() {
        // Two jobs on four tiles: row-major stacks them at one end (hot
        // ONI 0), thermal-aware spreads them.
        let m = strip();
        let js = jobs(&[5.0, 5.0]);
        let naive = allocate_jobs(&m, &js, Watts::new(10.0), AllocationPolicy::RowMajor).unwrap();
        let smart =
            allocate_jobs(&m, &js, Watts::new(10.0), AllocationPolicy::ThermalAware).unwrap();
        assert!(
            smart.spread.value() < 0.5 * naive.spread.value(),
            "thermal-aware {} vs row-major {}",
            smart.spread,
            naive.spread
        );
    }

    #[test]
    fn all_jobs_are_placed_exactly_once() {
        let m = strip();
        let js = jobs(&[2.0, 3.0, 1.0, 4.0, 2.5]);
        let r = allocate_jobs(&m, &js, Watts::new(10.0), AllocationPolicy::ThermalAware).unwrap();
        assert_eq!(r.assignment.len(), 5);
        assert!(r.assignment.iter().all(|&t| t < 4));
        let total: f64 = r.tile_powers.iter().map(|p| p.value()).sum();
        assert!((total - 12.5).abs() < 1e-9);
    }

    #[test]
    fn respects_tile_caps() {
        let m = strip();
        let js = jobs(&[6.0, 6.0, 6.0, 6.0]);
        let r = allocate_jobs(&m, &js, Watts::new(7.0), AllocationPolicy::ThermalAware).unwrap();
        for p in &r.tile_powers {
            assert!(p.value() <= 7.0 + 1e-9);
        }
        // One 6 W job per tile: all four tiles used.
        let mut tiles: Vec<usize> = r.assignment.clone();
        tiles.sort_unstable();
        assert_eq!(tiles, vec![0, 1, 2, 3]);
    }

    #[test]
    fn overload_is_rejected() {
        let m = strip();
        // 5 jobs x 6 W on 4 tiles with 7 W caps: the fifth cannot fit.
        let js = jobs(&[6.0, 6.0, 6.0, 6.0, 6.0]);
        assert!(allocate_jobs(&m, &js, Watts::new(7.0), AllocationPolicy::ThermalAware).is_err());
        // A single job above the cap is rejected outright.
        assert!(
            allocate_jobs(&m, &jobs(&[8.0]), Watts::new(7.0), AllocationPolicy::RowMajor).is_err()
        );
    }

    #[test]
    fn empty_job_list_is_fine() {
        let m = strip();
        let r = allocate_jobs(&m, &[], Watts::new(10.0), AllocationPolicy::ThermalAware).unwrap();
        assert!(r.assignment.is_empty());
        assert!(r.spread.value().abs() < 1e-12);
    }
}
