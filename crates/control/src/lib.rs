//! Run-time thermal management for VCSEL-based optical interconnect.
//!
//! The paper's contribution is a *design-time* methodology: size the MR
//! heater power and VCSEL current so the interconnect tolerates the thermal
//! field. Its Section II surveys the *run-time* alternatives the community
//! uses instead — and this crate implements them, so the design-time
//! methodology can be quantitatively compared against each one:
//!
//! | Technique | Paper ref | Module |
//! |---|---|---|
//! | Feedback ring stabilization | \[12\] Padmaraju et al. | [`CalibrationLoop`] |
//! | ONoC channel remapping | \[15\] Zhang et al. | [`remap_channels`] |
//! | DVFS + workload migration | \[16\] Li et al. | [`dvfs_cap`], [`migrate_workload`] |
//! | Thermally-aware job allocation | \[14\] Zhang et al. | [`allocate_jobs`] |
//!
//! The control loops run on a [`ThermalPlant`] abstraction with a built-in
//! lumped RC implementation ([`LumpedPlant`]) whose coefficients are sized
//! from the paper's device geometry; the steady-state policies run on the
//! linear [`InfluenceModel`], which can be calibrated against the full FVM
//! simulator with one solve per tile.
//!
//! # Example: closed-loop ring lock vs design-time heater
//!
//! ```
//! use vcsel_control::{CalibrationConfig, CalibrationLoop, LumpedPlant};
//! use vcsel_units::{Celsius, TemperatureDelta, Watts};
//!
//! let mut plant = LumpedPlant::oni_island(4, 4, Celsius::new(50.0))?;
//! let mut d = vec![Watts::ZERO; 8];
//! for laser in d.iter_mut().skip(4) { *laser = Watts::from_milliwatts(3.6); }
//! plant.set_disturbance(&d)?;
//!
//! let target = CalibrationLoop::auto_target(
//!     &plant, &[Watts::ZERO; 8], &[0, 1, 2, 3], TemperatureDelta::new(0.5))?;
//! let mut cal = CalibrationLoop::new(target, &[0, 1, 2, 3], CalibrationConfig::default())?;
//! let outcome = cal.run(&mut plant)?;
//! assert!(outcome.locked);
//! println!(
//!     "locked in {:.1} ms at {} total heater power",
//!     outcome.settle_time_s.unwrap() * 1e3,
//!     outcome.total_heater_power,
//! );
//! # Ok::<(), vcsel_control::ControlError>(())
//! ```

// Lint levels (forbid(unsafe_code), warn(missing_docs), the clippy set)
// come from [workspace.lints] in the root Cargo.toml.

mod allocation;
mod calibration;
mod dvfs;
mod error;
mod influence;
mod pi;
mod plant;
mod plant_fvm;
mod remap;

pub use allocation::{allocate_jobs, AllocationPolicy, AllocationResult, Job};
pub use calibration::{CalibrationConfig, CalibrationLoop, CalibrationOutcome};
pub use dvfs::{dvfs_cap, migrate_workload, DvfsResult, MigrationConfig, MigrationResult};
pub use error::ControlError;
pub use influence::InfluenceModel;
pub use pi::PiController;
pub use plant::{LumpedPlant, LumpedPlantBuilder, ThermalPlant};
pub use plant_fvm::{FvmNode, FvmPlant};
pub use remap::{remap_channels, RemapConfig, RemapResult};
