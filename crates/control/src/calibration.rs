//! Closed-loop microring calibration (paper reference \[12\]).
//!
//! The design-time methodology of the paper sizes a *constant* MR heater
//! power (`P_heater ≈ 0.3 × P_VCSEL`). The run-time alternative it cites —
//! Padmaraju et al.'s feedback stabilization \[12\] — measures each ring's
//! misalignment and drives its heater with a PI loop instead. This module
//! implements that loop on a [`ThermalPlant`], so the two approaches can be
//! compared on settle time, steady-state heater power and residual
//! misalignment (the paper's Section III-B argues the run-time loop "comes
//! with performances overhead due to algorithm execution and heating
//! latency"; here that latency is measured, not assumed).
//!
//! Temperature is the control variable: ring resonance moves at
//! 0.1 nm/°C, so "align ring to channel" is "hold the ring at the target
//! temperature" — the hottest uncontrolled device plus a headroom margin,
//! since resistive heaters only push temperature *up*.

use serde::{Deserialize, Serialize};
use vcsel_units::{Celsius, TemperatureDelta, Watts};

use crate::{ControlError, PiController, ThermalPlant};

/// Tuning and termination parameters of the calibration loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationConfig {
    /// Proportional gain, W/°C.
    pub kp_w_per_c: f64,
    /// Integral gain, W/(°C·s).
    pub ki_w_per_c_s: f64,
    /// Maximum heater power per ring.
    pub max_heater: Watts,
    /// Controller/plant step, seconds.
    pub dt_s: f64,
    /// Step budget before the loop gives up.
    pub max_steps: usize,
    /// Temperature tolerance counting as "locked", °C.
    pub tolerance_c: f64,
    /// Consecutive in-tolerance steps required to declare lock.
    pub hold_steps: usize,
}

impl CalibrationConfig {
    /// Gains and limits sized for the [`crate::LumpedPlant::oni_island`]
    /// plant: millisecond time constants, 2 mW heater ceiling (a ring
    /// heater at 190 µW/nm can move ~10 nm), 0.1 ms steps, 0.05 °C lock
    /// tolerance (0.005 nm residual misalignment).
    pub fn oni_island_default() -> Self {
        Self {
            kp_w_per_c: 2e-4,
            ki_w_per_c_s: 0.5,
            max_heater: Watts::from_milliwatts(2.0),
            dt_s: 1e-4,
            max_steps: 20_000,
            tolerance_c: 0.05,
            hold_steps: 20,
        }
    }

    fn validate(&self) -> Result<(), ControlError> {
        if !(self.max_heater.value() > 0.0) {
            return Err(ControlError::BadParameter {
                reason: format!("max heater power must be positive, got {}", self.max_heater),
            });
        }
        if !(self.dt_s > 0.0) || !self.dt_s.is_finite() {
            return Err(ControlError::BadParameter {
                reason: format!("step must be positive, got {}", self.dt_s),
            });
        }
        if self.max_steps == 0 || self.hold_steps == 0 {
            return Err(ControlError::BadParameter {
                reason: "step budgets must be at least 1".into(),
            });
        }
        if !(self.tolerance_c > 0.0) || !self.tolerance_c.is_finite() {
            return Err(ControlError::BadParameter {
                reason: format!("tolerance must be positive, got {}", self.tolerance_c),
            });
        }
        Ok(())
    }
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self::oni_island_default()
    }
}

/// Result of a closed-loop calibration run.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationOutcome {
    /// Whether every controlled ring locked within the step budget.
    pub locked: bool,
    /// Time to lock, seconds (`None` if the loop never locked).
    pub settle_time_s: Option<f64>,
    /// Steps actually executed.
    pub steps: usize,
    /// Final temperature of every plant node.
    pub final_temps: Vec<Celsius>,
    /// Final heater power of every *controlled* node, in controller order.
    pub final_powers: Vec<Watts>,
    /// Total heater power at the end of the run.
    pub total_heater_power: Watts,
    /// Heater energy integrated over the run, joules.
    pub energy_j: f64,
    /// Worst residual temperature error among controlled nodes, °C.
    pub residual_error_c: f64,
}

impl CalibrationOutcome {
    /// Worst residual ring-to-channel misalignment, using the silicon
    /// thermo-optic drift `drift_nm_per_c` (0.1 nm/°C in the paper).
    pub fn residual_misalignment(&self, drift_nm_per_c: f64) -> vcsel_units::Nanometers {
        vcsel_units::Nanometers::new(self.residual_error_c * drift_nm_per_c)
    }
}

/// The per-ring PI calibration loop of \[12\].
///
/// # Example
///
/// ```
/// use vcsel_control::{CalibrationConfig, CalibrationLoop, LumpedPlant};
/// use vcsel_units::{Celsius, Watts};
///
/// // 4 rings (controlled) + 4 lasers (disturbance) on one island.
/// let mut plant = LumpedPlant::oni_island(4, 4, Celsius::new(50.0))?;
/// let mut d = vec![Watts::ZERO; 8];
/// for laser in d.iter_mut().skip(4) { *laser = Watts::from_milliwatts(3.6); }
/// plant.set_disturbance(&d)?;
///
/// let mut cal = CalibrationLoop::new(
///     Celsius::new(53.0),                       // target ring temperature
///     &[0, 1, 2, 3],                            // ring node indices
///     CalibrationConfig::oni_island_default(),
/// )?;
/// let outcome = cal.run(&mut plant)?;
/// assert!(outcome.locked);
/// # Ok::<(), vcsel_control::ControlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CalibrationLoop {
    target: Celsius,
    controlled: Vec<usize>,
    controllers: Vec<PiController>,
    config: CalibrationConfig,
}

impl CalibrationLoop {
    /// Builds the loop: one PI controller per entry of `controlled` (plant
    /// node indices that own a heater), all regulating to `target`.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::BadParameter`] for an invalid configuration,
    /// an empty or duplicated `controlled` set, or a non-finite target.
    pub fn new(
        target: Celsius,
        controlled: &[usize],
        config: CalibrationConfig,
    ) -> Result<Self, ControlError> {
        config.validate()?;
        if controlled.is_empty() {
            return Err(ControlError::BadParameter {
                reason: "need at least one controlled ring".into(),
            });
        }
        let mut seen = controlled.to_vec();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != controlled.len() {
            return Err(ControlError::BadParameter {
                reason: "controlled node indices must be unique".into(),
            });
        }
        if !target.value().is_finite() {
            return Err(ControlError::BadParameter {
                reason: format!("target temperature must be finite, got {target}"),
            });
        }
        let controllers = controlled
            .iter()
            .map(|_| {
                PiController::new(
                    config.kp_w_per_c,
                    config.ki_w_per_c_s,
                    0.0,
                    config.max_heater.value(),
                )
            })
            .collect::<Result<_, _>>()?;
        Ok(Self { target, controlled: controlled.to_vec(), controllers, config })
    }

    /// Picks a target for a plant under the given steady inputs: the
    /// hottest *uncontrolled* node plus `margin` of headroom (heaters can
    /// only heat, so the rings must aim above every passive device).
    ///
    /// # Errors
    ///
    /// Propagates plant errors; returns [`ControlError::BadParameter`] if
    /// every node is controlled.
    pub fn auto_target(
        plant: &crate::LumpedPlant,
        steady_inputs: &[Watts],
        controlled: &[usize],
        margin: TemperatureDelta,
    ) -> Result<Celsius, ControlError> {
        let steady = plant.steady_state(steady_inputs)?;
        let hottest = steady
            .iter()
            .enumerate()
            .filter(|(i, _)| !controlled.contains(i))
            .map(|(_, t)| t.value())
            .fold(f64::NEG_INFINITY, f64::max);
        if !hottest.is_finite() {
            return Err(ControlError::BadParameter {
                reason: "auto target needs at least one uncontrolled node".into(),
            });
        }
        Ok(Celsius::new(hottest + margin.value()))
    }

    /// The regulation target.
    pub fn target(&self) -> Celsius {
        self.target
    }

    /// Runs the loop to lock or step-budget exhaustion.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::DimensionMismatch`] if a controlled index is
    /// outside the plant, plus any plant stepping error.
    pub fn run<P: ThermalPlant>(
        &mut self,
        plant: &mut P,
    ) -> Result<CalibrationOutcome, ControlError> {
        let n = plant.node_count();
        if let Some(&bad) = self.controlled.iter().find(|&&i| i >= n) {
            return Err(ControlError::DimensionMismatch {
                what: "controlled node index",
                expected: n,
                got: bad,
            });
        }

        let mut powers = vec![Watts::ZERO; n];
        let mut energy = 0.0;
        let mut hold = 0usize;
        let mut settle_time = None;
        let mut steps_done = 0;
        let mut temps = plant.temperatures();

        for step in 0..self.config.max_steps {
            // Controller pass on the *latest* measurements.
            let mut worst = 0.0f64;
            for (slot, &node) in self.controlled.iter().enumerate() {
                let error = self.target.value() - temps[node].value();
                worst = worst.max(error.abs());
                let u = self.controllers[slot].update(error, self.config.dt_s);
                powers[node] = Watts::new(u);
            }
            temps = plant.step(&powers, self.config.dt_s)?;
            energy += powers.iter().map(|p| p.value()).sum::<f64>() * self.config.dt_s;
            steps_done = step + 1;

            if worst <= self.config.tolerance_c {
                hold += 1;
                if hold >= self.config.hold_steps && settle_time.is_none() {
                    settle_time = Some(steps_done as f64 * self.config.dt_s);
                    break;
                }
            } else {
                hold = 0;
            }
        }

        let residual = self
            .controlled
            .iter()
            .map(|&node| (self.target.value() - temps[node].value()).abs())
            .fold(0.0, f64::max);
        let final_powers: Vec<Watts> = self.controlled.iter().map(|&node| powers[node]).collect();
        let total = Watts::new(final_powers.iter().map(|p| p.value()).sum());
        Ok(CalibrationOutcome {
            locked: settle_time.is_some(),
            settle_time_s: settle_time,
            steps: steps_done,
            final_temps: temps,
            final_powers,
            total_heater_power: total,
            energy_j: energy,
            residual_error_c: residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LumpedPlant;

    fn island_with_lasers() -> (LumpedPlant, Vec<usize>) {
        let mut plant = LumpedPlant::oni_island(4, 4, Celsius::new(50.0)).unwrap();
        let mut d = vec![Watts::ZERO; 8];
        for laser in d.iter_mut().skip(4) {
            *laser = Watts::from_milliwatts(3.6);
        }
        plant.set_disturbance(&d).unwrap();
        (plant, vec![0, 1, 2, 3])
    }

    #[test]
    fn loop_locks_and_holds_target() {
        let (mut plant, rings) = island_with_lasers();
        let target = CalibrationLoop::auto_target(
            &plant,
            &[Watts::ZERO; 8],
            &rings,
            TemperatureDelta::new(0.5),
        )
        .unwrap();
        let mut cal =
            CalibrationLoop::new(target, &rings, CalibrationConfig::oni_island_default()).unwrap();
        let outcome = cal.run(&mut plant).unwrap();
        assert!(outcome.locked, "loop must lock: residual {}", outcome.residual_error_c);
        assert!(outcome.residual_error_c <= 0.05);
        for &ring in &rings {
            let t = outcome.final_temps[ring].value();
            assert!((t - target.value()).abs() < 0.1, "ring at {t}, target {target}");
        }
    }

    #[test]
    fn settle_time_is_milliseconds() {
        // The paper attributes "heating latency" to run-time calibration:
        // on island physics the lock takes on the order of milliseconds.
        let (mut plant, rings) = island_with_lasers();
        let mut cal = CalibrationLoop::new(
            Celsius::new(53.0),
            &rings,
            CalibrationConfig::oni_island_default(),
        )
        .unwrap();
        let outcome = cal.run(&mut plant).unwrap();
        let settle = outcome.settle_time_s.expect("locks");
        assert!(settle > 1e-4, "settle {settle} s suspiciously fast");
        assert!(settle < 0.5, "settle {settle} s too slow for a mW heater");
    }

    #[test]
    fn unreachable_target_reports_unlocked() {
        let (mut plant, rings) = island_with_lasers();
        // 2 mW ceiling cannot push a ring 200 °C above ambient.
        let mut cal = CalibrationLoop::new(
            Celsius::new(250.0),
            &rings,
            CalibrationConfig { max_steps: 3_000, ..CalibrationConfig::oni_island_default() },
        )
        .unwrap();
        let outcome = cal.run(&mut plant).unwrap();
        assert!(!outcome.locked);
        assert!(outcome.settle_time_s.is_none());
        // Saturated actuators: every heater pinned at the ceiling.
        for p in &outcome.final_powers {
            assert!((p.as_milliwatts() - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn steady_power_matches_dc_analysis() {
        // The PI loop's converged heater power must equal the power a DC
        // analysis says is needed to hold the target.
        let (mut plant, rings) = island_with_lasers();
        let target = Celsius::new(53.0);
        let mut cal = CalibrationLoop::new(
            target,
            &rings,
            CalibrationConfig {
                max_steps: 100_000,
                tolerance_c: 0.01,
                ..CalibrationConfig::oni_island_default()
            },
        )
        .unwrap();
        let outcome = cal.run(&mut plant).unwrap();
        assert!(outcome.locked);
        // Re-apply the found powers as constants: steady state must hit the
        // target on every ring.
        let mut constant = vec![Watts::ZERO; 8];
        for (slot, &ring) in rings.iter().enumerate() {
            constant[ring] = outcome.final_powers[slot];
        }
        let steady = plant.steady_state(&constant).unwrap();
        for &ring in &rings {
            assert!(
                (steady[ring].value() - target.value()).abs() < 0.05,
                "DC check: ring at {} vs target {target}",
                steady[ring]
            );
        }
    }

    #[test]
    fn hotter_lasers_need_less_ring_heating() {
        // The chessboard insight: laser heat spills into the rings, so a
        // higher laser power reduces the heater power needed to reach a
        // *fixed* target.
        let target = Celsius::new(54.0);
        let run = |laser_mw: f64| {
            let mut plant = LumpedPlant::oni_island(4, 4, Celsius::new(50.0)).unwrap();
            let mut d = vec![Watts::ZERO; 8];
            for laser in d.iter_mut().skip(4) {
                *laser = Watts::from_milliwatts(laser_mw);
            }
            plant.set_disturbance(&d).unwrap();
            let mut cal = CalibrationLoop::new(
                target,
                &[0, 1, 2, 3],
                CalibrationConfig::oni_island_default(),
            )
            .unwrap();
            cal.run(&mut plant).unwrap().total_heater_power
        };
        let cold = run(1.0);
        let hot = run(5.0);
        assert!(
            hot.value() < cold.value(),
            "hot lasers {hot} should reduce heater demand vs {cold}"
        );
    }

    #[test]
    fn validation() {
        let cfg = CalibrationConfig::oni_island_default();
        assert!(CalibrationLoop::new(Celsius::new(50.0), &[], cfg).is_err());
        assert!(CalibrationLoop::new(Celsius::new(50.0), &[0, 0], cfg).is_err());
        assert!(CalibrationLoop::new(Celsius::new(f64::NAN), &[0], cfg).is_err());
        let bad = CalibrationConfig { dt_s: 0.0, ..cfg };
        assert!(CalibrationLoop::new(Celsius::new(50.0), &[0], bad).is_err());
        let bad = CalibrationConfig { max_heater: Watts::ZERO, ..cfg };
        assert!(CalibrationLoop::new(Celsius::new(50.0), &[0], bad).is_err());

        // Controlled index outside the plant.
        let mut plant = LumpedPlant::oni_island(2, 0, Celsius::new(50.0)).unwrap();
        let mut cal = CalibrationLoop::new(Celsius::new(51.0), &[5], cfg).unwrap();
        assert!(cal.run(&mut plant).is_err());
    }
}
