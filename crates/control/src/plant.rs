//! Lumped thermal plant for run-time control studies.
//!
//! Closed-loop studies (the feedback calibration of \[12\], migration
//! policies of \[16\]) need to *step* the thermal state thousands of times —
//! far too often for a full FVM solve per step. The standard practice is a
//! lumped RC compact model: each controlled site (a microring, an ONI, a
//! tile) becomes one thermal node with a heat capacity, a conductance to
//! ambient, and conductances to neighboring nodes. This is exactly the
//! compact-model abstraction the full simulator's `compact` module uses for
//! steady state, extended with node capacities and a backward-Euler
//! integrator (unconditionally stable, same scheme as the FVM transient
//! solver).
//!
//! ```text
//! C_i dT_i/dt = P_i − G_amb,i (T_i − T_amb) − Σ_j G_ij (T_i − T_j)
//! ```

use vcsel_numerics::solver::{self, SolveOptions};
use vcsel_numerics::TripletBuilder;
use vcsel_units::{Celsius, Watts};

use crate::ControlError;

/// Interface of anything the controllers can heat and observe.
///
/// Implementors advance an internal temperature state under per-node input
/// powers. [`LumpedPlant`] is the built-in RC-network implementation; an
/// FVM-backed adapter can implement the same trait when full-field accuracy
/// is needed.
pub trait ThermalPlant {
    /// Number of controlled/observed nodes.
    fn node_count(&self) -> usize;

    /// Advances the plant by `dt_s` seconds with the given per-node input
    /// powers and returns the node temperatures after the step.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::DimensionMismatch`] when `powers` does not
    /// have one entry per node, or [`ControlError::BadParameter`] for a
    /// non-positive step.
    fn step(&mut self, powers: &[Watts], dt_s: f64) -> Result<Vec<Celsius>, ControlError>;

    /// Current node temperatures.
    fn temperatures(&self) -> Vec<Celsius>;
}

/// Builder-constructed RC network of thermal nodes.
///
/// # Example
///
/// ```
/// use vcsel_control::{LumpedPlant, ThermalPlant};
/// use vcsel_units::{Celsius, Watts};
///
/// // Two rings, 1 mJ/K each, 1 mW/K to ambient, weakly coupled.
/// let mut plant = LumpedPlant::builder(Celsius::new(40.0))
///     .node(1e-3, 1e-3)
///     .node(1e-3, 1e-3)
///     .couple(0, 1, 2e-4)
///     .build()?;
/// // Heat node 0 with 1 mW for one second of 10 ms steps.
/// for _ in 0..100 {
///     plant.step(&[Watts::from_milliwatts(1.0), Watts::ZERO], 0.01)?;
/// }
/// let t = plant.temperatures();
/// assert!(t[0] > t[1]);            // driven node is hotter
/// assert!(t[1].value() > 40.0);    // coupling leaks heat across
/// # Ok::<(), vcsel_control::ControlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LumpedPlant {
    /// Heat capacity per node, J/K.
    capacity: Vec<f64>,
    /// Conductance to ambient per node, W/K.
    g_ambient: Vec<f64>,
    /// Symmetric coupling list `(i, j, g)` in W/K.
    couplings: Vec<(usize, usize, f64)>,
    /// Ambient temperature, °C.
    ambient: f64,
    /// Current temperatures, °C.
    temps: Vec<f64>,
    /// Per-node disturbance power added to every step (e.g. neighboring
    /// chip activity), W.
    disturbance: Vec<f64>,
}

/// Builder for [`LumpedPlant`].
#[derive(Debug, Clone)]
pub struct LumpedPlantBuilder {
    ambient: f64,
    capacity: Vec<f64>,
    g_ambient: Vec<f64>,
    couplings: Vec<(usize, usize, f64)>,
}

impl LumpedPlantBuilder {
    /// Adds a node with heat capacity `capacity_j_per_k` (J/K) and ambient
    /// conductance `g_ambient_w_per_k` (W/K). Nodes are indexed in insertion
    /// order.
    #[must_use]
    pub fn node(mut self, capacity_j_per_k: f64, g_ambient_w_per_k: f64) -> Self {
        self.capacity.push(capacity_j_per_k);
        self.g_ambient.push(g_ambient_w_per_k);
        self
    }

    /// Adds `n` identical nodes.
    #[must_use]
    pub fn nodes(mut self, n: usize, capacity_j_per_k: f64, g_ambient_w_per_k: f64) -> Self {
        for _ in 0..n {
            self.capacity.push(capacity_j_per_k);
            self.g_ambient.push(g_ambient_w_per_k);
        }
        self
    }

    /// Couples nodes `i` and `j` with conductance `g_w_per_k` (W/K).
    #[must_use]
    pub fn couple(mut self, i: usize, j: usize, g_w_per_k: f64) -> Self {
        self.couplings.push((i, j, g_w_per_k));
        self
    }

    /// Validates and builds the plant, initialized at ambient.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::BadParameter`] when no nodes were added, a
    /// capacity or conductance is non-positive, or a coupling references a
    /// missing node or couples a node to itself.
    pub fn build(self) -> Result<LumpedPlant, ControlError> {
        let n = self.capacity.len();
        if n == 0 {
            return Err(ControlError::BadParameter {
                reason: "plant needs at least one node".into(),
            });
        }
        if !self.ambient.is_finite() {
            return Err(ControlError::BadParameter {
                reason: format!("ambient temperature must be finite, got {}", self.ambient),
            });
        }
        for (i, (&c, &g)) in self.capacity.iter().zip(&self.g_ambient).enumerate() {
            if !(c > 0.0) || !c.is_finite() {
                return Err(ControlError::BadParameter {
                    reason: format!("node {i} capacity must be positive, got {c}"),
                });
            }
            if !(g >= 0.0) || !g.is_finite() {
                return Err(ControlError::BadParameter {
                    reason: format!("node {i} ambient conductance must be non-negative, got {g}"),
                });
            }
        }
        // At least one node must see ambient or heat has nowhere to go.
        if self.g_ambient.iter().all(|&g| g == 0.0) {
            return Err(ControlError::BadParameter {
                reason: "at least one node needs a non-zero ambient conductance".into(),
            });
        }
        for &(i, j, g) in &self.couplings {
            if i >= n || j >= n || i == j {
                return Err(ControlError::BadParameter {
                    reason: format!("coupling ({i}, {j}) references invalid nodes (n = {n})"),
                });
            }
            if !(g > 0.0) || !g.is_finite() {
                return Err(ControlError::BadParameter {
                    reason: format!("coupling ({i}, {j}) conductance must be positive, got {g}"),
                });
            }
        }
        Ok(LumpedPlant {
            temps: vec![self.ambient; n],
            disturbance: vec![0.0; n],
            capacity: self.capacity,
            g_ambient: self.g_ambient,
            couplings: self.couplings,
            ambient: self.ambient,
        })
    }
}

impl LumpedPlant {
    /// Starts building a plant around the given ambient temperature.
    pub fn builder(ambient: Celsius) -> LumpedPlantBuilder {
        LumpedPlantBuilder {
            ambient: ambient.value(),
            capacity: Vec::new(),
            g_ambient: Vec::new(),
            couplings: Vec::new(),
        }
    }

    /// A ready-made ONI-scale plant: `rings` microring nodes sitting next to
    /// `lasers` VCSEL nodes on a shared silicon island, all mutually coupled
    /// through the island with nearest-neighbor chain conductances.
    ///
    /// The numbers are derived from the paper's geometry: a Ø10 µm ring
    /// (plus heater) has ~0.1 µJ/K capacity; through 4 µm of oxide+silicon
    /// its constriction conductance to the substrate is ~0.5 mW/K; lateral
    /// silicon coupling between 30 µm-pitch neighbors is a few mW/K. These
    /// give millisecond-scale time constants — the "heating latency" the
    /// paper's Section III-B attributes to run-time calibration.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::BadParameter`] when `rings + lasers == 0`.
    pub fn oni_island(rings: usize, lasers: usize, ambient: Celsius) -> Result<Self, ControlError> {
        let n = rings + lasers;
        if n == 0 {
            return Err(ControlError::BadParameter {
                reason: "ONI island needs at least one device".into(),
            });
        }
        let mut b = LumpedPlant::builder(ambient);
        for _ in 0..rings {
            b = b.node(1.0e-7, 5.0e-4); // ring + heater
        }
        for _ in 0..lasers {
            b = b.node(8.0e-7, 1.2e-3); // VCSEL mesa (15x30 µm², taller stack)
        }
        // Chain coupling: device k to k+1 (alternating layout of Fig. 1-b).
        for k in 0..n.saturating_sub(1) {
            b = b.couple(k, k + 1, 2.5e-3);
        }
        b.build()
    }

    /// Sets the per-node disturbance power (W) added to every subsequent
    /// step — chip activity seen from below, a neighboring laser, etc.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::DimensionMismatch`] unless one value per
    /// node is supplied.
    pub fn set_disturbance(&mut self, powers: &[Watts]) -> Result<(), ControlError> {
        if powers.len() != self.temps.len() {
            return Err(ControlError::DimensionMismatch {
                what: "disturbance powers",
                expected: self.temps.len(),
                got: powers.len(),
            });
        }
        self.disturbance = powers.iter().map(|p| p.value()).collect();
        Ok(())
    }

    /// Ambient temperature.
    pub fn ambient(&self) -> Celsius {
        Celsius::new(self.ambient)
    }

    /// Steady-state temperatures under constant `powers` (+ disturbance):
    /// solves the DC network directly, bypassing time integration.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::DimensionMismatch`] for a wrong-length power
    /// vector; propagates solver failures.
    pub fn steady_state(&self, powers: &[Watts]) -> Result<Vec<Celsius>, ControlError> {
        let n = self.temps.len();
        if powers.len() != n {
            return Err(ControlError::DimensionMismatch {
                what: "input powers",
                expected: n,
                got: powers.len(),
            });
        }
        let mut builder = TripletBuilder::new(n, n);
        for i in 0..n {
            builder.add(i, i, self.g_ambient[i]);
        }
        for &(i, j, g) in &self.couplings {
            builder.add(i, i, g);
            builder.add(j, j, g);
            builder.add(i, j, -g);
            builder.add(j, i, -g);
        }
        let a = builder.build();
        let rhs: Vec<f64> = (0..n)
            .map(|i| powers[i].value() + self.disturbance[i] + self.g_ambient[i] * self.ambient)
            .collect();
        let sol = solver::conjugate_gradient(&a, &rhs, &SolveOptions::default())?;
        Ok(sol.solution.into_iter().map(Celsius::new).collect())
    }
}

impl ThermalPlant for LumpedPlant {
    fn node_count(&self) -> usize {
        self.temps.len()
    }

    fn step(&mut self, powers: &[Watts], dt_s: f64) -> Result<Vec<Celsius>, ControlError> {
        let n = self.temps.len();
        if powers.len() != n {
            return Err(ControlError::DimensionMismatch {
                what: "input powers",
                expected: n,
                got: powers.len(),
            });
        }
        if !(dt_s > 0.0) || !dt_s.is_finite() {
            return Err(ControlError::BadParameter {
                reason: format!("time step must be positive, got {dt_s}"),
            });
        }
        // Backward Euler: (C/dt + G) T_{n+1} = C/dt T_n + P + G_amb T_amb.
        let mut builder = TripletBuilder::new(n, n);
        for i in 0..n {
            builder.add(i, i, self.g_ambient[i] + self.capacity[i] / dt_s);
        }
        for &(i, j, g) in &self.couplings {
            builder.add(i, i, g);
            builder.add(j, j, g);
            builder.add(i, j, -g);
            builder.add(j, i, -g);
        }
        let a = builder.build();
        let rhs: Vec<f64> = (0..n)
            .map(|i| {
                self.capacity[i] / dt_s * self.temps[i]
                    + powers[i].value()
                    + self.disturbance[i]
                    + self.g_ambient[i] * self.ambient
            })
            .collect();
        let sol = solver::conjugate_gradient(&a, &rhs, &SolveOptions::default())?;
        self.temps = sol.solution;
        Ok(self.temperatures())
    }

    fn temperatures(&self) -> Vec<Celsius> {
        self.temps.iter().map(|&t| Celsius::new(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node() -> LumpedPlant {
        LumpedPlant::builder(Celsius::new(40.0))
            .node(1e-3, 1e-3)
            .node(1e-3, 1e-3)
            .couple(0, 1, 5e-4)
            .build()
            .unwrap()
    }

    #[test]
    fn step_approaches_steady_state() {
        let mut plant = two_node();
        let p = [Watts::from_milliwatts(2.0), Watts::ZERO];
        let steady = plant.steady_state(&p).unwrap();
        for _ in 0..2_000 {
            plant.step(&p, 0.05).unwrap();
        }
        let t = plant.temperatures();
        for (got, want) in t.iter().zip(&steady) {
            assert!(
                (got.value() - want.value()).abs() < 0.01,
                "transient {got} must land on steady {want}"
            );
        }
    }

    #[test]
    fn single_node_rc_analytic() {
        // One node: T(t) = T_amb + (P/G)(1 − e^{−t/τ}), τ = C/G.
        let mut plant = LumpedPlant::builder(Celsius::new(20.0)).node(2e-3, 1e-3).build().unwrap();
        let p = [Watts::from_milliwatts(1.0)];
        let tau = 2e-3 / 1e-3; // 2 s
        let dt = tau / 200.0;
        let steps = 200; // integrate exactly one τ
        for _ in 0..steps {
            plant.step(&p, dt).unwrap();
        }
        let want = 20.0 + 1.0 * (1.0 - (-1.0f64).exp());
        let got = plant.temperatures()[0].value();
        assert!((got - want).abs() < 0.01, "got {got}, want {want}");
    }

    #[test]
    fn heat_flows_down_gradient() {
        let mut plant = two_node();
        plant.step(&[Watts::from_milliwatts(5.0), Watts::ZERO], 0.1).unwrap();
        let t = plant.temperatures();
        assert!(t[0] > t[1]);
        assert!(t[1].value() > 40.0, "coupled node must warm: {}", t[1]);
    }

    #[test]
    fn disturbance_acts_like_input_power() {
        let mut a = two_node();
        let mut b = two_node();
        a.set_disturbance(&[Watts::from_milliwatts(1.0), Watts::ZERO]).unwrap();
        for _ in 0..50 {
            a.step(&[Watts::ZERO, Watts::ZERO], 0.1).unwrap();
            b.step(&[Watts::from_milliwatts(1.0), Watts::ZERO], 0.1).unwrap();
        }
        for (x, y) in a.temperatures().iter().zip(&b.temperatures()) {
            assert!((x.value() - y.value()).abs() < 1e-9);
        }
    }

    #[test]
    fn oni_island_time_constant_is_fast() {
        // Millisecond-scale settling: after 50 ms the island is within 1 %
        // of its steady state.
        let mut plant = LumpedPlant::oni_island(4, 4, Celsius::new(50.0)).unwrap();
        let mut p = vec![Watts::ZERO; 8];
        for laser in p.iter_mut().skip(4) {
            *laser = Watts::from_milliwatts(3.6);
        }
        let steady = plant.steady_state(&p).unwrap();
        for _ in 0..50 {
            plant.step(&p, 1e-3).unwrap();
        }
        for (got, want) in plant.temperatures().iter().zip(&steady) {
            let rise = want.value() - 50.0;
            assert!(
                (got.value() - want.value()).abs() < 0.01 * rise.max(0.1),
                "slow settling: {got} vs {want}"
            );
        }
    }

    #[test]
    fn energy_balance_at_steady_state() {
        // At steady state, power in = power out through ambient conductances.
        let plant = two_node();
        let p = [Watts::from_milliwatts(2.0), Watts::from_milliwatts(1.0)];
        let t = plant.steady_state(&p).unwrap();
        let out: f64 =
            t.iter().enumerate().map(|(i, ti)| plant.g_ambient[i] * (ti.value() - 40.0)).sum();
        assert!((out - 3e-3).abs() < 1e-9, "out {out}");
    }

    #[test]
    fn validation() {
        assert!(LumpedPlant::builder(Celsius::new(40.0)).build().is_err());
        assert!(LumpedPlant::builder(Celsius::new(40.0)).node(0.0, 1.0).build().is_err());
        assert!(LumpedPlant::builder(Celsius::new(40.0)).node(1.0, 0.0).build().is_err());
        assert!(LumpedPlant::builder(Celsius::new(40.0))
            .node(1.0, 1.0)
            .couple(0, 0, 1.0)
            .build()
            .is_err());
        assert!(LumpedPlant::builder(Celsius::new(40.0))
            .node(1.0, 1.0)
            .couple(0, 5, 1.0)
            .build()
            .is_err());
        let mut ok = two_node();
        assert!(ok.step(&[Watts::ZERO], 0.1).is_err());
        assert!(ok.step(&[Watts::ZERO, Watts::ZERO], 0.0).is_err());
        assert!(ok.set_disturbance(&[Watts::ZERO]).is_err());
    }
}
