//! Engine-cache behaviour: warm restores are bitwise-identical and
//! factorization-free; every corruption fixture degrades to a typed error
//! plus a fresh build — never a wrong answer, never a panic.

use vcsel_arch::{SccConfig, SccSystem};
use vcsel_core::cache::{attempt_log, cache_hits, cache_misses};
use vcsel_core::{CacheMode, CacheOutcome, CacheStore, EngineCache};
use vcsel_numerics::ArtifactError;
use vcsel_thermal::{EngineBlueprint, RestoreError};

/// A blueprint for the tiny test system (the same engine
/// `ThermalStudy::new(SccConfig::tiny_test(), ..)` builds).
fn tiny_blueprint() -> (SccConfig, EngineBlueprint) {
    let config = SccConfig::tiny_test();
    let system = SccSystem::build(&config).expect("tiny system builds");
    let spec = system.mesh_spec().expect("tiny mesh spec");
    let blueprint = EngineBlueprint::new(system.design(), &spec).expect("tiny mesh builds");
    (config, blueprint)
}

fn scratch_cache(tag: &str) -> EngineCache {
    let dir = std::env::temp_dir().join(format!("vcsel_engine_cache_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    EngineCache::new(CacheMode::ReadWrite, CacheStore::new(dir))
}

#[test]
fn warm_restore_hits_and_first_solve_is_bitwise_identical() {
    let (config, blueprint) = tiny_blueprint();
    let cache = scratch_cache("warm");
    let key = EngineCache::key(&config, blueprint.content_hash());

    let (hits0, misses0) = (cache_hits(), cache_misses());
    let (mut cold, outcome) = cache.obtain(&config, &blueprint).unwrap();
    assert!(matches!(outcome, CacheOutcome::MissAbsent), "cold probe: {outcome:?}");
    assert!(cache.store().path(&key).exists(), "cold build must persist its artifact");
    assert!(cache_misses() > misses0);

    // The "second process": a new obtain against the same store.
    let (mut warm, outcome) = cache.obtain(&config, &blueprint).unwrap();
    assert!(outcome.is_hit(), "warm probe must restore: {outcome:?}");
    assert!(cache_hits() > hits0, "hit counter must advance");
    // Zero factorizations: the restored engine leads with the blueprint's
    // kind without ever having run a factorization (the prebuilt rung).
    assert_eq!(warm.preconditioner_name(), cold.preconditioner_name());

    // First solve parity: identical field bits and identical CG iteration
    // count — restore changed nothing about the numerics.
    let cold_map = cold.solve().unwrap();
    let warm_map = warm.solve().unwrap();
    assert_eq!(cold.last_iterations(), warm.last_iterations());
    assert_eq!(cold_map.temperatures().len(), warm_map.temperatures().len());
    for (a, b) in cold_map.temperatures().iter().zip(warm_map.temperatures()) {
        assert_eq!(a.to_bits(), b.to_bits(), "restored field must be bitwise identical");
    }

    let _ = std::fs::remove_dir_all(cache.store().dir());
}

#[test]
fn truncated_artifact_falls_back_to_fresh_build() {
    let (config, blueprint) = tiny_blueprint();
    let cache = scratch_cache("trunc");
    let key = EngineCache::key(&config, blueprint.content_hash());
    cache.obtain(&config, &blueprint).unwrap();

    let path = cache.store().path(&key);
    let bytes = std::fs::read(&path).unwrap();

    // Cut below the envelope header: unambiguously truncated.
    std::fs::write(&path, &bytes[..8]).unwrap();
    let (_, outcome) = cache.obtain(&config, &blueprint).unwrap();
    assert!(
        matches!(
            outcome,
            CacheOutcome::MissRejected(RestoreError::Artifact(ArtifactError::Truncated { .. }))
        ),
        "header truncation must surface typed: {outcome:?}"
    );

    // Cut mid-payload: the checksum trailer no longer matches the bytes
    // before it, so the envelope rejects before any payload decoding.
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    let (mut ctx, outcome) = cache.obtain(&config, &blueprint).unwrap();
    assert!(
        matches!(
            outcome,
            CacheOutcome::MissRejected(RestoreError::Artifact(
                ArtifactError::Truncated { .. } | ArtifactError::ChecksumMismatch { .. }
            ))
        ),
        "payload truncation must surface typed: {outcome:?}"
    );
    // The fallback engine is fully functional and the bad entry was
    // overwritten with a complete artifact (readwrite mode).
    ctx.solve().unwrap();
    assert_eq!(std::fs::read(&path).unwrap().len(), bytes.len());

    let _ = std::fs::remove_dir_all(cache.store().dir());
}

#[test]
fn flipped_checksum_byte_falls_back_to_fresh_build() {
    let (config, blueprint) = tiny_blueprint();
    let cache = scratch_cache("cksum");
    let key = EngineCache::key(&config, blueprint.content_hash());
    cache.obtain(&config, &blueprint).unwrap();

    let path = cache.store().path(&key);
    let mut bytes = std::fs::read(&path).unwrap();
    // The trailing 8 bytes are the envelope checksum.
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    let (mut ctx, outcome) = cache.obtain(&config, &blueprint).unwrap();
    assert!(
        matches!(
            outcome,
            CacheOutcome::MissRejected(RestoreError::Artifact(
                ArtifactError::ChecksumMismatch { .. }
            ))
        ),
        "checksum damage must surface typed: {outcome:?}"
    );
    ctx.solve().unwrap();

    let _ = std::fs::remove_dir_all(cache.store().dir());
}

#[test]
fn version_bump_falls_back_to_fresh_build() {
    let (config, blueprint) = tiny_blueprint();
    let cache = scratch_cache("version");
    let key = EngineCache::key(&config, blueprint.content_hash());
    cache.obtain(&config, &blueprint).unwrap();

    let path = cache.store().path(&key);
    let mut bytes = std::fs::read(&path).unwrap();
    // Bytes 4..8 hold the little-endian format version; simulate a future
    // format. Version skew must be reported as such (checked before the
    // checksum), not as generic corruption.
    bytes[4] = bytes[4].wrapping_add(1);
    std::fs::write(&path, &bytes).unwrap();

    let (mut ctx, outcome) = cache.obtain(&config, &blueprint).unwrap();
    assert!(
        matches!(
            outcome,
            CacheOutcome::MissRejected(RestoreError::Artifact(ArtifactError::VersionSkew { .. }))
        ),
        "version skew must surface typed: {outcome:?}"
    );
    ctx.solve().unwrap();

    let _ = std::fs::remove_dir_all(cache.store().dir());
}

#[test]
fn key_collision_with_mismatched_content_hash_falls_back() {
    let (config, blueprint) = tiny_blueprint();
    // A different system whose artifact we park under the tiny key — the
    // stored content hash cannot match the tiny blueprint's.
    let other_config = SccConfig { oni_count: config.oni_count + 2, ..config.clone() };
    let other_system = SccSystem::build(&other_config).unwrap();
    let other_spec = other_system.mesh_spec().unwrap();
    let other_blueprint = EngineBlueprint::new(other_system.design(), &other_spec).unwrap();
    let other_engine = other_blueprint.build().unwrap();
    let foreign_bytes =
        other_blueprint.engine_artifact(&other_engine).expect("tiny engines are cacheable");

    let cache = scratch_cache("collision");
    let key = EngineCache::key(&config, blueprint.content_hash());
    cache.store().store(&key, &foreign_bytes).unwrap();

    let (mut ctx, outcome) = cache.obtain(&config, &blueprint).unwrap();
    assert!(
        matches!(outcome, CacheOutcome::MissRejected(RestoreError::ContentMismatch { .. })),
        "hash mismatch must surface typed: {outcome:?}"
    );
    ctx.solve().unwrap();
    // The typed rejection is also in the global attempt log.
    assert!(
        attempt_log().iter().any(|line| line.contains("content mismatch")),
        "attempt log must record the typed rejection: {:?}",
        attempt_log()
    );

    let _ = std::fs::remove_dir_all(cache.store().dir());
}

#[test]
fn read_mode_never_writes() {
    let (config, blueprint) = tiny_blueprint();
    let dir = std::env::temp_dir().join(format!("vcsel_engine_cache_ro_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = EngineCache::new(CacheMode::Read, CacheStore::new(&dir));
    let (_, outcome) = cache.obtain(&config, &blueprint).unwrap();
    assert!(matches!(outcome, CacheOutcome::MissAbsent));
    assert!(!dir.exists(), "read mode must not create cache entries");
    let _ = std::fs::remove_dir_all(&dir);
}
