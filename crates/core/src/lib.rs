//! The paper's contribution: a thermal-aware design methodology for
//! VCSEL-based on-chip optical interconnect (Figure 3).
//!
//! The flow takes a system specification (packaging, architecture, ONIs,
//! device powers — [`vcsel_arch::SccConfig`]), runs steady-state thermal
//! simulation, extracts per-ONI average and gradient temperatures, explores
//! the MR heater power to flatten intra-ONI gradients, and evaluates the
//! worst-case SNR of the ORNoC under the resulting temperature field:
//!
//! ```text
//! system spec ──► thermal simulation ──► thermal map
//!                     ▲      │
//!     P_heater DSE ───┘      ├──► gradient / average per ONI
//!     I_VCSEL  DSE ──────────┴──► SNR analysis ──► reliability & power
//! ```
//!
//! Because steady-state conduction is linear, the P_VCSEL × P_heater ×
//! P_chip design space is swept through a [`vcsel_thermal::ResponseBasis`]
//! (a handful of FVM solves + vector arithmetic) with results identical to
//! re-solving at every point.
//!
//! # Quickstart
//!
//! ```no_run
//! use vcsel_core::{DesignFlow, ThermalStudy};
//! use vcsel_arch::SccConfig;
//! use vcsel_units::Watts;
//!
//! let flow = DesignFlow::paper();
//! let study = ThermalStudy::new(SccConfig::default(), flow.simulator())?;
//! // Evaluate the paper's chosen operating point.
//! let outcome = study.evaluate(
//!     Watts::from_milliwatts(3.6),  // P_VCSEL
//!     Watts::from_milliwatts(1.08), // P_heater = 0.3 x P_VCSEL
//!     Watts::new(25.0),             // P_chip
//! )?;
//! println!("worst ONI gradient: {}", outcome.worst_gradient());
//! let snr = flow.evaluate_snr(study.system(), &outcome, Watts::from_milliwatts(3.6))?;
//! println!("worst-case SNR: {:.1} dB", snr.worst_snr_db);
//! # Ok::<(), vcsel_core::FlowError>(())
//! ```

// Lint levels (forbid(unsafe_code), warn(missing_docs), the clippy set)
// come from [workspace.lints] in the root Cargo.toml.

pub mod batch;
pub mod cache;
pub mod calibration;
mod error;
pub mod experiments;
mod flow;
mod power;
pub mod report;
pub mod scenarios;
mod snr;
pub mod spec;

pub use batch::{BatchPlan, SweepOverride, SweepSpec};
pub use cache::{CacheMode, CacheOutcome, CacheStore, EngineCache};
pub use error::FlowError;
pub use flow::{HeaterExploration, HeaterPoint, ThermalOutcome, ThermalStudy};
pub use power::{explore_vcsel_power, PowerExploration, PowerPoint};
pub use report::{fidelity_label, parse_fidelity, CheckpointStore, FigureCli};
pub use scenarios::{
    FaultEvent, FaultKind, FaultPlan, MetricPins, Scenario, ScenarioReport, TrafficPattern,
};
pub use snr::{DesignFlow, SnrSummary, WaveguideSnr};
