//! Fault-injection scenario engine: deterministic fault plans driving a
//! transient co-simulation of the thermal plant, the solver ladder, and
//! the run-time counter-measures (channel remapping, DVFS throttling).
//!
//! The paper's methodology is a *design-time* flow; this module stresses
//! the same models at *run time*. A [`Scenario`] names a fault plan (VCSEL
//! bank death, heater bank stuck off, traffic storms, DVFS throttles,
//! sensor dropouts, solver faults), replays it step by step on a
//! [`TransientStepper`] whose power groups are split **per ONI** (so a
//! single ONI's lasers or heaters can die independently), and closes the
//! loop every few steps:
//!
//! * a proportional **DVFS** controller throttles chip power when the
//!   sensed peak exceeds the scenario's temperature limit (and restores it
//!   once the plant cools), mirroring the cubic `P ∝ f³` law of
//!   [`vcsel_control::dvfs_cap`],
//! * a **channel remap** ([`vcsel_control::remap_channels`]) evacuates
//!   wavelength channels lost to a VCSEL death and re-optimizes the
//!   assignment against the drifted temperature field,
//! * a **sensor dropout** makes the controller fly blind on the last good
//!   reading — the plant keeps evolving underneath it,
//! * an injected **solver fault** corrupts the active preconditioner; the
//!   step must recover through the [`SolveLadder`](vcsel_numerics::SolveLadder)
//!   escalation rather than panic or silently return garbage.
//!
//! Every scenario in [`catalogue`] emits a [`ScenarioReport`] with
//! regression-pinned metrics ([`MetricPins`], asserted at the default
//! seed) so CI catches both physics and robustness regressions.

use serde::{Deserialize, Serialize};
use vcsel_arch::{Fidelity, PlacementCase, SccConfig, SccFloorplan, SccSystem};
use vcsel_control::{remap_channels, RemapConfig, RemapResult};
use vcsel_network::{assign_channels, traffic, OniId, SnrAnalyzer, WavelengthGrid};
use vcsel_numerics::solver::SolveOptions;
use vcsel_telemetry::{Arg, ArgValue, TelemetrySink};
use vcsel_thermal::{Design, TransientStepper};
use vcsel_units::{Celsius, Meters, Watts};

use crate::FlowError;

/// The seed the catalogue's [`MetricPins`] are measured at. Other seeds
/// jitter the fault timing (and are exercised for robustness, not pins).
pub const DEFAULT_SEED: u64 = 7;

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The VCSEL bank of one ONI stops lasing (and dissipating): its
    /// outgoing wavelength channels go dark and must be evacuated.
    VcselDeath {
        /// Index of the failing ONI.
        oni: usize,
    },
    /// The microring heater bank of one ONI sticks off: its receivers
    /// drift cold and the remapper re-optimizes against the skewed field.
    HeaterStuckOff {
        /// Index of the failing ONI.
        oni: usize,
    },
    /// Chip activity jumps to `multiplier ×` its nominal power.
    TrafficBurst {
        /// New chip-power multiplier (1.0 = nominal).
        multiplier: f64,
    },
    /// An external governor clamps the DVFS power scale at most `scale`.
    DvfsThrottle {
        /// Upper bound imposed on the chip power scale, in `(0, 1]`.
        scale: f64,
    },
    /// The temperature sensors freeze for `steps` steps: the controller
    /// holds the last good reading while the plant keeps moving.
    SensorDropout {
        /// Number of steps without fresh readings.
        steps: usize,
    },
    /// Corrupts the active preconditioner of the thermal solver; the next
    /// step must recover through the solve ladder.
    SolverFault,
}

impl FaultKind {
    /// Stable label for telemetry events and logs.
    pub fn label(&self) -> &'static str {
        match self {
            Self::VcselDeath { .. } => "vcsel_death",
            Self::HeaterStuckOff { .. } => "heater_stuck_off",
            Self::TrafficBurst { .. } => "traffic_burst",
            Self::DvfsThrottle { .. } => "dvfs_throttle",
            Self::SensorDropout { .. } => "sensor_dropout",
            Self::SolverFault => "solver_fault",
        }
    }
}

/// A fault scheduled at a simulation step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// 1-based step the fault fires at (before the step is taken).
    pub at_step: usize,
    /// What breaks.
    pub kind: FaultKind,
}

/// `splitmix64` — the standard 64-bit mixer; deterministic, dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded, sorted fault schedule. The seed deterministically jitters
/// each event by ±1 step, so different seeds explore slightly different
/// interleavings of fault and control action while any single seed stays
/// perfectly reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    seed: u64,
}

impl FaultPlan {
    /// Builds the plan: jitters every event's step by −1/0/+1 (seeded,
    /// clamped to step ≥ 1) and sorts by firing step.
    pub fn new(mut events: Vec<FaultEvent>, seed: u64) -> Self {
        let mut state = seed ^ 0xA076_1D64_78BD_642F;
        for e in &mut events {
            let jitter = (splitmix64(&mut state) % 3) as i64 - 1;
            e.at_step = e.at_step.saturating_add_signed(jitter as isize).max(1);
        }
        events.sort_by_key(|e| e.at_step);
        Self { events, seed }
    }

    /// The seed the jitter was drawn from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The jittered, sorted schedule.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Faults firing exactly at `step`.
    fn due(&self, step: usize) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.at_step == step)
    }
}

/// Traffic pattern a scenario runs on the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Each ONI sends to its clockwise neighbor.
    RingNeighbors,
    /// Every ordered pair communicates (worst-case wavelength demand).
    AllToAll,
    /// Every ONI sends to one hot node.
    Hotspot {
        /// Index of the convergecast target.
        hot: usize,
    },
}

impl TrafficPattern {
    /// The communication pairs for an `n`-ONI ring.
    pub fn pairs(&self, n: usize) -> Vec<(OniId, OniId)> {
        match *self {
            Self::RingNeighbors => traffic::ring_neighbors(n),
            Self::AllToAll => traffic::all_to_all(n),
            Self::Hotspot { hot } => traffic::hotspot(n, OniId::new(hot)),
        }
    }
}

/// Regression pins checked against a [`ScenarioReport`] produced at
/// [`DEFAULT_SEED`]. Ranges are deliberately loose enough to survive
/// floating-point noise but tight enough to catch physics or control
/// regressions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricPins {
    /// Inclusive range the peak ONI temperature must land in, °C.
    pub peak_c: (f64, f64),
    /// Ceiling on total CG iterations across the run.
    pub max_cg_iterations: usize,
    /// Floor on the remap gain, dB (only checked when a remap ran).
    pub min_remap_gain_db: f64,
    /// Whether the scenario must have triggered a channel remap.
    pub require_remap: bool,
    /// Floor on solver-ladder escalations observed during the run.
    pub min_escalations: usize,
    /// Ceiling on steps spent above the scenario's temperature limit.
    pub max_over_limit_steps: usize,
    /// Whether the final peak must sit back at or below the limit.
    pub require_recovered: bool,
}

impl Default for MetricPins {
    fn default() -> Self {
        Self {
            peak_c: (40.0, 100.0),
            max_cg_iterations: usize::MAX,
            min_remap_gain_db: -0.5,
            require_remap: false,
            min_escalations: 0,
            max_over_limit_steps: usize::MAX,
            require_recovered: true,
        }
    }
}

impl MetricPins {
    /// Checks `report` against the pins; returns one human-readable line
    /// per violation (empty = all pins hold).
    pub fn check(&self, report: &ScenarioReport) -> Vec<String> {
        let mut violations = Vec::new();
        if !report.converged {
            violations.push("final solve did not converge".to_string());
        }
        let (lo, hi) = self.peak_c;
        if !(report.peak_c >= lo && report.peak_c <= hi) {
            violations
                .push(format!("peak {:.2} °C outside pinned [{lo:.2}, {hi:.2}]", report.peak_c));
        }
        if report.cg_iterations > self.max_cg_iterations {
            violations.push(format!(
                "{} CG iterations exceed the pinned ceiling {}",
                report.cg_iterations, self.max_cg_iterations
            ));
        }
        if self.require_remap && !report.remap_ran {
            violations.push("expected a channel remap, none ran".to_string());
        }
        if report.remap_ran && report.remap_gain_db < self.min_remap_gain_db {
            violations.push(format!(
                "remap gain {:.2} dB below pinned floor {:.2} dB",
                report.remap_gain_db, self.min_remap_gain_db
            ));
        }
        if report.solver_escalations < self.min_escalations {
            violations.push(format!(
                "{} ladder escalations below pinned floor {}",
                report.solver_escalations, self.min_escalations
            ));
        }
        if report.over_limit_steps > self.max_over_limit_steps {
            violations.push(format!(
                "{} steps over the limit exceed the pinned ceiling {}",
                report.over_limit_steps, self.max_over_limit_steps
            ));
        }
        if self.require_recovered && !report.recovered {
            violations.push(format!(
                "final peak {:.2} °C never recovered below the limit",
                report.final_peak_c
            ));
        }
        violations
    }
}

/// A named fault-injection scenario: a plant configuration, a traffic
/// pattern, a fault schedule, and the pins its report must satisfy.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Stable identifier (report key, CLI selector).
    pub name: &'static str,
    /// One-line description of what the scenario stresses.
    pub description: &'static str,
    /// Number of transient steps.
    pub steps: usize,
    /// Step size, seconds.
    pub dt_s: f64,
    /// Control-loop period, steps.
    pub control_period: usize,
    /// Temperature limit the DVFS controller defends.
    pub temp_limit: Celsius,
    /// Traffic pattern on the ring.
    pub traffic: TrafficPattern,
    /// Fault schedule (pre-jitter).
    pub events: Vec<FaultEvent>,
    /// Regression pins at [`DEFAULT_SEED`].
    pub pins: MetricPins,
}

/// Summary metrics of one scenario run — serialized under
/// `reports/scenarios/` and pinned by [`MetricPins`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Seed the fault plan was jittered with.
    pub seed: u64,
    /// Steps actually integrated.
    pub steps: usize,
    /// Step size, seconds.
    pub dt_s: f64,
    /// Highest ONI probe temperature seen at any step, °C.
    pub peak_c: f64,
    /// Highest ONI probe temperature at the final step, °C.
    pub final_peak_c: f64,
    /// Mean ONI probe temperature at the final step, °C.
    pub mean_final_c: f64,
    /// Steps whose true (not sensed) peak exceeded the limit.
    pub over_limit_steps: usize,
    /// Whether the final peak sits at or below the limit.
    pub recovered: bool,
    /// Whether a channel remap ran.
    pub remap_ran: bool,
    /// Worst-case SNR gain of the remap, dB (0 when none ran).
    pub remap_gain_db: f64,
    /// Move/swap count of the remap search.
    pub remap_moves: usize,
    /// Communications force-evacuated off dead channels.
    pub evacuated: usize,
    /// Lowest chip power scale the DVFS loop reached.
    pub min_dvfs_scale: f64,
    /// Equivalent frequency scale under `P ∝ f³`.
    pub min_frequency_scale: f64,
    /// CG iterations summed over every step.
    pub cg_iterations: usize,
    /// Solver-ladder escalations observed (fault recoveries).
    pub solver_escalations: usize,
    /// Whether the last step's solve converged (always true on `Ok`).
    pub converged: bool,
    /// Worst-case SNR of the final assignment on the final field, dB.
    pub worst_snr_db: f64,
    /// Wall-clock milliseconds of plant setup (mesh, assembly, painting,
    /// preconditioner factorization). Telemetry, never pinned.
    pub setup_ms: f64,
    /// Wall-clock milliseconds inside the transient steps (the solver
    /// ladder's CG work). Telemetry, never pinned.
    pub step_ms: f64,
    /// Wall-clock milliseconds in control actions (DVFS updates, channel
    /// remaps, SNR analysis). Telemetry, never pinned.
    pub control_ms: f64,
}

/// The 4-ONI reduced plant every scenario runs on: 2×2 tiles on an
/// 8 × 6 mm die, four ONIs on a 6 mm ring, tiny-fidelity mesh.
pub fn scenario_config() -> SccConfig {
    SccConfig {
        floorplan: SccFloorplan::reduced(
            2,
            2,
            Meters::from_millimeters(8.0),
            Meters::from_millimeters(6.0),
        ),
        placement: PlacementCase::Custom { perimeter: Meters::from_millimeters(6.0) },
        oni_count: 4,
        p_vcsel: Watts::from_milliwatts(2.0),
        p_heater: Watts::from_milliwatts(0.6),
        p_chip: Watts::new(2.0),
        fidelity: Fidelity::Tiny,
        ..SccConfig::default()
    }
}

/// Splits the system's global `vcsel` / `driver` / `heater` power groups
/// into per-ONI groups (`vcsel@0`, `heater@3`, …) so a fault plan can
/// kill one ONI's devices without touching its neighbors. The `chip`
/// group stays global (the DVFS knob).
pub fn per_oni_design(system: &SccSystem) -> Design {
    let mut design = system.design().clone();
    for b in design.blocks_mut() {
        let Some(group) = b.group().map(str::to_owned) else { continue };
        if !matches!(group.as_str(), "vcsel" | "driver" | "heater") {
            continue;
        }
        let Some(idx) = oni_index_of(b.name()) else { continue };
        *b = b.clone().with_group(format!("{group}@{idx}"));
    }
    design
}

/// Parses the ONI index out of a device-block name like
/// `vcsel@oni3[1,2]`.
fn oni_index_of(name: &str) -> Option<usize> {
    let (_, rest) = name.split_once("@oni")?;
    let (digits, _) = rest.split_once('[')?;
    digits.parse().ok()
}

/// Runs one scenario end to end and returns its report.
///
/// The loop per step: fire due faults → build per-group power scales →
/// advance the stepper (through the solve ladder) → sample the ONI probes
/// → every `control_period` steps, run the DVFS controller and any
/// pending channel remap on the *sensed* temperatures.
///
/// # Errors
///
/// Propagates plant construction and solver errors; a solver fault that
/// exhausts the whole ladder surfaces as a typed non-convergence error,
/// never as a silently degraded field.
pub fn run_scenario(scenario: &Scenario, seed: u64) -> Result<ScenarioReport, FlowError> {
    run_scenario_with(scenario, seed, vcsel_telemetry::global())
}

/// [`run_scenario`] with an explicit telemetry sink: every fault firing,
/// DVFS move and channel remap lands as a `scenario`-category instant, the
/// whole run under one `scenario_run` span, and the stepper's per-step
/// spans and solve samples record through the same handle. Tests inject
/// private sinks here; production callers use [`run_scenario`] and the
/// process-wide sink.
///
/// # Errors
///
/// Same contract as [`run_scenario`].
pub fn run_scenario_with(
    scenario: &Scenario,
    seed: u64,
    sink: &TelemetrySink,
) -> Result<ScenarioReport, FlowError> {
    if scenario.steps == 0 || scenario.control_period == 0 {
        return Err(FlowError::BadConfig {
            reason: "scenario needs at least one step and a positive control period".into(),
        });
    }
    let mut run_span = sink.span("scenario", "scenario_run");
    run_span.arg("name", ArgValue::Str(scenario.name));
    run_span.arg("seed", ArgValue::U64(seed));
    let plan = FaultPlan::new(scenario.events.clone(), seed);
    let config = scenario_config();
    let setup_timer = std::time::Instant::now();
    let setup_span = sink.span("scenario", "setup");
    let system = SccSystem::build(&config)?;
    let design = per_oni_design(&system);
    let spec = system.mesh_spec()?;
    // 1e-8 on a ~Kelvin-scale field is far below any metric pin's
    // resolution and saves a third of the CG work per step.
    let mut stepper = TransientStepper::new(&design, &spec, config.ambient, scenario.dt_s)?
        .with_options(SolveOptions { tolerance: 1e-8, max_iterations: 50_000, relaxation: 1.6 })
        .with_telemetry(sink.clone());
    drop(setup_span);
    let setup_ms = setup_timer.elapsed().as_secs_f64() * 1e3;
    let mut step_ms = 0.0f64;
    let mut control_ms = 0.0f64;

    let n = system.onis().len();
    let optical = system.stack().optical_layer_z();
    let z_mid = (optical.0 + optical.1) / 2.0;
    let probes: Vec<[Meters; 3]> = system
        .onis()
        .iter()
        .map(|o| {
            let c = o.center();
            [c[0], c[1], z_mid]
        })
        .collect();

    let topology = system.topology();
    let pairs = scenario.traffic.pairs(n);
    let mut comms = assign_channels(topology, &pairs)?;
    let analyzer = SnrAnalyzer::paper_default(WavelengthGrid::paper_default());
    let injected: Vec<Watts> = vec![Watts::from_milliwatts(0.3); comms.len()];

    let limit = scenario.temp_limit.value();
    let mut vcsel_scale = vec![1.0f64; n];
    let mut heater_scale = vec![1.0f64; n];
    let mut chip_mult = 1.0f64;
    let mut dvfs_scale = 1.0f64;
    let mut min_dvfs = 1.0f64;
    let mut dropout = 0usize;
    let mut sensed = vec![config.ambient.value(); n];
    let mut raw = sensed.clone();
    let mut dead_channels: Vec<usize> = Vec::new();
    let mut remap_pending = false;
    let mut remap: Option<RemapResult> = None;
    let mut peak = f64::NEG_INFINITY;
    let mut over_limit = 0usize;
    let mut escalations = 0usize;

    // Group labels are stable across the run; build them once.
    let labels: Vec<[String; 3]> = (0..n)
        .map(|k| [format!("vcsel@{k}"), format!("driver@{k}"), format!("heater@{k}")])
        .collect();

    for step in 1..=scenario.steps {
        for event in plan.due(step) {
            sink.instant(
                "scenario",
                "fault",
                &[Arg::str("kind", event.kind.label()), Arg::u64("step", step as u64)],
            );
            match event.kind {
                FaultKind::VcselDeath { oni } => {
                    if oni < n {
                        vcsel_scale[oni] = 0.0;
                        for c in &comms {
                            if c.source().index() == oni && !dead_channels.contains(&c.channel()) {
                                dead_channels.push(c.channel());
                            }
                        }
                        remap_pending = true;
                    }
                }
                FaultKind::HeaterStuckOff { oni } => {
                    if oni < n {
                        heater_scale[oni] = 0.0;
                        remap_pending = true;
                    }
                }
                FaultKind::TrafficBurst { multiplier } => {
                    chip_mult = multiplier.max(0.0);
                }
                FaultKind::DvfsThrottle { scale } => {
                    dvfs_scale = dvfs_scale.min(scale.clamp(0.0, 1.0));
                    min_dvfs = min_dvfs.min(dvfs_scale);
                }
                FaultKind::SensorDropout { steps } => {
                    dropout = dropout.max(steps);
                }
                FaultKind::SolverFault => stepper.inject_solver_fault(),
            }
        }

        let mut scales: Vec<(&str, f64)> = Vec::with_capacity(3 * n + 1);
        scales.push(("chip", chip_mult * dvfs_scale));
        for (k, l) in labels.iter().enumerate() {
            scales.push((l[0].as_str(), vcsel_scale[k]));
            scales.push((l[1].as_str(), vcsel_scale[k]));
            scales.push((l[2].as_str(), heater_scale[k]));
        }
        let step_timer = std::time::Instant::now();
        stepper.step(&scales)?;
        step_ms += step_timer.elapsed().as_secs_f64() * 1e3;
        escalations += stepper.health().escalations;

        for (i, p) in probes.iter().enumerate() {
            raw[i] = stepper
                .temperature_at(*p)
                .ok_or_else(|| FlowError::BadConfig {
                    reason: "scenario probe fell outside the mesh".into(),
                })?
                .value();
        }
        if dropout > 0 {
            dropout -= 1;
        } else {
            sensed.copy_from_slice(&raw);
        }
        let step_peak = raw.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        peak = peak.max(step_peak);
        if step_peak > limit {
            over_limit += 1;
        }

        if step % scenario.control_period == 0 {
            let control_timer = std::time::Instant::now();
            let sensed_peak = sensed.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let dvfs_before = dvfs_scale;
            if sensed_peak > limit {
                dvfs_scale = (dvfs_scale * 0.8).max(0.2);
            } else if dvfs_scale < 1.0 {
                dvfs_scale = (dvfs_scale * 1.1).min(1.0);
            }
            min_dvfs = min_dvfs.min(dvfs_scale);
            if dvfs_scale != dvfs_before {
                sink.instant(
                    "scenario",
                    "dvfs",
                    &[Arg::f64("scale", dvfs_scale), Arg::u64("step", step as u64)],
                );
            }

            if remap_pending {
                let temps: Vec<Celsius> = sensed.iter().map(|&t| Celsius::new(t)).collect();
                let mut cfg =
                    RemapConfig { channel_budget: 16, max_moves: 40, ..Default::default() };
                for &ch in &dead_channels {
                    cfg = cfg.with_dead_channel(ch);
                }
                let remap_span = sink.span("scenario", "remap_search");
                let result = remap_channels(topology, &comms, &temps, &injected, &analyzer, &cfg)?;
                drop(remap_span);
                sink.instant(
                    "scenario",
                    "remap",
                    &[
                        Arg::f64("gain_db", result.gain_db()),
                        Arg::u64("moves", result.moves as u64),
                        Arg::u64("evacuated", result.evacuated as u64),
                        Arg::u64("step", step as u64),
                    ],
                );
                comms = result.comms.clone();
                remap = Some(result);
                remap_pending = false;
            }
            control_ms += control_timer.elapsed().as_secs_f64() * 1e3;
        }
    }

    let final_peak = raw.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean_final = raw.iter().sum::<f64>() / n as f64;
    let temps: Vec<Celsius> = raw.iter().map(|&t| Celsius::new(t)).collect();
    let snr = analyzer.analyze(topology, &comms, &temps, &injected)?;

    Ok(ScenarioReport {
        name: scenario.name.to_string(),
        seed,
        steps: stepper.steps(),
        dt_s: scenario.dt_s,
        peak_c: peak,
        final_peak_c: final_peak,
        mean_final_c: mean_final,
        over_limit_steps: over_limit,
        recovered: final_peak <= limit,
        remap_ran: remap.is_some(),
        remap_gain_db: remap.as_ref().map_or(0.0, RemapResult::gain_db),
        remap_moves: remap.as_ref().map_or(0, |r| r.moves),
        evacuated: remap.as_ref().map_or(0, |r| r.evacuated),
        min_dvfs_scale: min_dvfs,
        min_frequency_scale: min_dvfs.cbrt(),
        cg_iterations: stepper.total_iterations(),
        solver_escalations: escalations,
        converged: stepper.health().converged,
        worst_snr_db: snr.worst_snr_db(),
        setup_ms,
        step_ms,
        control_ms,
    })
}

/// The named scenario catalogue: six fault stories from "nothing breaks"
/// to "everything breaks at once". Pins hold at [`DEFAULT_SEED`].
pub fn catalogue() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "healthy-baseline",
            description: "no faults: the reference trajectory every other scenario degrades from",
            steps: 40,
            dt_s: 1e-2,
            control_period: 4,
            temp_limit: Celsius::new(95.0),
            traffic: TrafficPattern::RingNeighbors,
            events: vec![],
            pins: MetricPins {
                peak_c: (44.0, 56.0),
                max_cg_iterations: 20_000,
                max_over_limit_steps: 0,
                ..MetricPins::default()
            },
        },
        Scenario {
            name: "hot-channel-death",
            description: "one ONI's VCSEL bank dies mid-run; its channels are evacuated by remap",
            steps: 40,
            dt_s: 1e-2,
            control_period: 4,
            temp_limit: Celsius::new(95.0),
            traffic: TrafficPattern::AllToAll,
            events: vec![FaultEvent { at_step: 10, kind: FaultKind::VcselDeath { oni: 1 } }],
            pins: MetricPins {
                peak_c: (44.0, 56.0),
                max_cg_iterations: 20_000,
                require_remap: true,
                min_remap_gain_db: 0.0,
                max_over_limit_steps: 0,
                ..MetricPins::default()
            },
        },
        Scenario {
            name: "heater-bank-failure",
            description: "one ONI's ring heaters stick off; remap re-optimizes on the skewed field",
            steps: 40,
            dt_s: 1e-2,
            control_period: 4,
            temp_limit: Celsius::new(95.0),
            traffic: TrafficPattern::AllToAll,
            events: vec![FaultEvent { at_step: 8, kind: FaultKind::HeaterStuckOff { oni: 0 } }],
            pins: MetricPins {
                peak_c: (44.0, 56.0),
                max_cg_iterations: 20_000,
                require_remap: true,
                max_over_limit_steps: 0,
                ..MetricPins::default()
            },
        },
        Scenario {
            name: "traffic-storm",
            description: "a 3x chip-power burst plus a sensor dropout; DVFS must cap the peak",
            steps: 48,
            dt_s: 1e-2,
            control_period: 4,
            temp_limit: Celsius::new(51.0),
            traffic: TrafficPattern::RingNeighbors,
            events: vec![
                FaultEvent { at_step: 8, kind: FaultKind::TrafficBurst { multiplier: 3.0 } },
                FaultEvent { at_step: 12, kind: FaultKind::SensorDropout { steps: 6 } },
            ],
            pins: MetricPins {
                peak_c: (44.0, 58.0),
                max_cg_iterations: 24_000,
                ..MetricPins::default()
            },
        },
        Scenario {
            name: "thermal-cycling",
            description: "chip power square-waves between 2.5x and 0.5x; the field must track it",
            steps: 48,
            dt_s: 1e-2,
            control_period: 4,
            temp_limit: Celsius::new(95.0),
            traffic: TrafficPattern::Hotspot { hot: 0 },
            events: vec![
                FaultEvent { at_step: 8, kind: FaultKind::TrafficBurst { multiplier: 2.5 } },
                FaultEvent { at_step: 22, kind: FaultKind::TrafficBurst { multiplier: 0.5 } },
                FaultEvent { at_step: 36, kind: FaultKind::TrafficBurst { multiplier: 2.5 } },
            ],
            pins: MetricPins {
                peak_c: (44.0, 62.0),
                max_cg_iterations: 24_000,
                max_over_limit_steps: 0,
                ..MetricPins::default()
            },
        },
        Scenario {
            name: "cascade-failure-with-remap",
            description: "solver fault, VCSEL death, burst and an external throttle, back to back",
            steps: 48,
            dt_s: 1e-2,
            control_period: 4,
            temp_limit: Celsius::new(53.5),
            traffic: TrafficPattern::AllToAll,
            events: vec![
                FaultEvent { at_step: 5, kind: FaultKind::SolverFault },
                FaultEvent { at_step: 9, kind: FaultKind::VcselDeath { oni: 2 } },
                FaultEvent { at_step: 13, kind: FaultKind::TrafficBurst { multiplier: 2.0 } },
                FaultEvent { at_step: 20, kind: FaultKind::DvfsThrottle { scale: 0.6 } },
            ],
            pins: MetricPins {
                peak_c: (44.0, 58.0),
                max_cg_iterations: 64_000,
                require_remap: true,
                min_remap_gain_db: 0.0,
                min_escalations: 1,
                ..MetricPins::default()
            },
        },
    ]
}

/// Looks up a catalogue scenario by name.
///
/// # Errors
///
/// Returns [`FlowError::BadConfig`] listing the valid names.
pub fn find_scenario(name: &str) -> Result<Scenario, FlowError> {
    let all = catalogue();
    let names: Vec<&str> = all.iter().map(|s| s.name).collect();
    all.into_iter().find(|s| s.name == name).ok_or_else(|| FlowError::BadConfig {
        reason: format!("unknown scenario '{name}' (expected one of: {})", names.join(", ")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_names_are_unique_and_complete() {
        let all = catalogue();
        assert!(all.len() >= 6, "catalogue must hold at least six scenarios");
        let mut names: Vec<&str> = all.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "scenario names must be unique");
        for s in &all {
            assert!(s.steps > 0 && s.control_period > 0 && s.dt_s > 0.0);
            assert!(!s.description.is_empty());
        }
    }

    #[test]
    fn fault_plan_jitter_is_deterministic_and_bounded() {
        let events = vec![
            FaultEvent { at_step: 10, kind: FaultKind::SolverFault },
            FaultEvent { at_step: 20, kind: FaultKind::TrafficBurst { multiplier: 2.0 } },
        ];
        let a = FaultPlan::new(events.clone(), 7);
        let b = FaultPlan::new(events.clone(), 7);
        assert_eq!(a, b, "same seed must give the same plan");
        for (orig, jittered) in events.iter().zip(a.events()) {
            let d = jittered.at_step as i64 - orig.at_step as i64;
            assert!(d.abs() <= 1, "jitter must stay within one step, got {d}");
            assert!(jittered.at_step >= 1);
        }
        // Step-1 events can never be jittered to step 0 (before the run).
        let early =
            FaultPlan::new(vec![FaultEvent { at_step: 1, kind: FaultKind::SolverFault }], 3);
        assert!(early.events()[0].at_step >= 1);
    }

    #[test]
    fn per_oni_regrouping_splits_device_groups() {
        let system = SccSystem::build(&scenario_config()).unwrap();
        let design = per_oni_design(&system);
        let groups = design.group_names();
        assert!(groups.contains(&"chip"), "chip group must stay global");
        for k in 0..4 {
            for prefix in ["vcsel", "driver", "heater"] {
                let name = format!("{prefix}@{k}");
                assert!(
                    groups.iter().any(|g| *g == name),
                    "missing per-ONI group {name}: {groups:?}"
                );
            }
        }
        assert!(!groups.contains(&"vcsel"), "global vcsel group must be gone");
        // Power is conserved by regrouping: 4 ONIs x 16 VCSELs x 2 mW.
        let total: f64 =
            (0..4).map(|k| design.group_power(&format!("vcsel@{k}")).as_milliwatts()).sum();
        assert!((total - 128.0).abs() < 1e-9, "vcsel power must be preserved, got {total}");
    }

    #[test]
    fn oni_index_parsing() {
        assert_eq!(oni_index_of("vcsel@oni3[1,2]"), Some(3));
        assert_eq!(oni_index_of("ring@oni12[0,7]"), Some(12));
        assert_eq!(oni_index_of("tile[0,0]"), None);
        assert_eq!(oni_index_of("vcsel@onix[1,2]"), None);
    }

    #[test]
    fn find_scenario_round_trips_and_rejects_unknown() {
        for s in catalogue() {
            assert_eq!(find_scenario(s.name).unwrap().name, s.name);
        }
        assert!(matches!(find_scenario("nope"), Err(FlowError::BadConfig { .. })));
    }

    #[test]
    fn pins_flag_violations() {
        let report = ScenarioReport {
            name: "x".into(),
            seed: DEFAULT_SEED,
            steps: 10,
            dt_s: 1e-3,
            peak_c: 120.0,
            final_peak_c: 120.0,
            mean_final_c: 100.0,
            over_limit_steps: 10,
            recovered: false,
            remap_ran: false,
            remap_gain_db: 0.0,
            remap_moves: 0,
            evacuated: 0,
            min_dvfs_scale: 1.0,
            min_frequency_scale: 1.0,
            cg_iterations: 1_000_000,
            solver_escalations: 0,
            converged: false,
            worst_snr_db: 10.0,
            setup_ms: 0.0,
            step_ms: 0.0,
            control_ms: 0.0,
        };
        let pins = MetricPins {
            peak_c: (40.0, 60.0),
            max_cg_iterations: 1000,
            require_remap: true,
            min_escalations: 1,
            max_over_limit_steps: 5,
            require_recovered: true,
            ..MetricPins::default()
        };
        let violations = pins.check(&report);
        assert!(violations.len() >= 6, "expected many violations, got {violations:?}");
        // A clean report passes the default pins.
        let clean = ScenarioReport {
            peak_c: 50.0,
            final_peak_c: 50.0,
            over_limit_steps: 0,
            recovered: true,
            converged: true,
            cg_iterations: 100,
            ..report
        };
        assert!(MetricPins::default().check(&clean).is_empty());
    }
}
