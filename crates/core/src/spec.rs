//! Serializable system specification and the one-shot methodology runner.
//!
//! Figure 3's left-hand box is a *system specification*: packaging,
//! architecture, ONI description, device powers, activity. This module
//! gives that box a concrete file format (JSON via serde) so the whole
//! methodology is drivable from a spec file — the `onoc-dse` binary is a
//! thin wrapper around [`run_spec`].
//!
//! ```json
//! {
//!   "name": "paper-operating-point",
//!   "placement": "case1",
//!   "oni_count": 8,
//!   "layout": "chessboard",
//!   "activity": "Uniform",
//!   "p_chip_w": 25.0,
//!   "p_vcsel_mw": 3.6,
//!   "heater": { "explore": { "max_ratio": 1.0, "samples": 9 } },
//!   "fidelity": "fast",
//!   "snr_target_db": 15.0
//! }
//! ```

use serde::{Deserialize, Serialize};
use vcsel_arch::{Activity, Fidelity, OniLayout, PlacementCase, SccConfig};
use vcsel_units::Watts;

use crate::{DesignFlow, FlowError, ThermalStudy};

/// ONI placement scenario (Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum PlacementSpec {
    /// 18 mm ring.
    Case1,
    /// 32.4 mm ring.
    Case2,
    /// 46.8 mm ring.
    Case3,
}

impl From<PlacementSpec> for PlacementCase {
    fn from(p: PlacementSpec) -> Self {
        match p {
            PlacementSpec::Case1 => PlacementCase::Case1,
            PlacementSpec::Case2 => PlacementCase::Case2,
            PlacementSpec::Case3 => PlacementCase::Case3,
        }
    }
}

/// Device layout inside each ONI (Figure 1-b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum LayoutSpec {
    /// Alternating transmitters and receivers (the paper's layout).
    Chessboard,
    /// All transmitters grouped, then all receivers (the ablation).
    Clustered,
}

impl From<LayoutSpec> for OniLayout {
    fn from(l: LayoutSpec) -> Self {
        match l {
            LayoutSpec::Chessboard => OniLayout::Chessboard,
            LayoutSpec::Clustered => OniLayout::Clustered,
        }
    }
}

/// Mesh-resolution preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum FidelitySpec {
    /// Unit-test scale.
    Tiny,
    /// Release-run scale (default).
    Fast,
    /// The paper's 5 µm ONI meshing. Expensive.
    Paper,
}

impl From<FidelitySpec> for Fidelity {
    fn from(f: FidelitySpec) -> Self {
        match f {
            FidelitySpec::Tiny => Fidelity::Tiny,
            FidelitySpec::Fast => Fidelity::Fast,
            FidelitySpec::Paper => Fidelity::Paper,
        }
    }
}

/// How the MR heater power is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum HeaterSpec {
    /// Fixed `P_heater = ratio × P_VCSEL`.
    Fixed {
        /// Heater-to-VCSEL power ratio.
        ratio: f64,
    },
    /// Design-space exploration over `P_heater ∈ [0, max_ratio × P_VCSEL]`.
    Explore {
        /// Upper end of the explored ratio range.
        max_ratio: f64,
        /// Sweep samples (the optimum is golden-section refined).
        samples: usize,
    },
}

/// A complete, file-loadable system specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// Human-readable name, echoed in reports.
    pub name: String,
    /// ONI placement scenario.
    pub placement: PlacementSpec,
    /// Number of ONIs on the ring.
    pub oni_count: usize,
    /// Device layout inside each ONI.
    pub layout: LayoutSpec,
    /// Chip-activity pattern (uses [`Activity`]'s own serde form).
    pub activity: Activity,
    /// Total chip power, watts.
    pub p_chip_w: f64,
    /// Dissipated power per VCSEL, milliwatts.
    pub p_vcsel_mw: f64,
    /// Heater sizing policy.
    pub heater: HeaterSpec,
    /// Mesh preset.
    pub fidelity: FidelitySpec,
    /// Optional SNR requirement checked in the report, dB.
    #[serde(default)]
    pub snr_target_db: Option<f64>,
}

impl SystemSpec {
    /// The paper's Section V-C operating point: case 1, 25 W uniform,
    /// P_VCSEL = 3.6 mW, P_heater = 0.3 × P_VCSEL.
    pub fn paper_operating_point() -> Self {
        Self {
            name: "paper-operating-point".into(),
            placement: PlacementSpec::Case1,
            oni_count: 8,
            layout: LayoutSpec::Chessboard,
            activity: Activity::Uniform,
            p_chip_w: 25.0,
            p_vcsel_mw: 3.6,
            heater: HeaterSpec::Fixed { ratio: 0.3 },
            fidelity: FidelitySpec::Fast,
            snr_target_db: Some(15.0),
        }
    }

    /// Validates ranges and converts to an [`SccConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::BadConfig`] for out-of-range powers or counts.
    pub fn to_config(&self) -> Result<SccConfig, FlowError> {
        if !(self.p_chip_w >= 0.0) || !self.p_chip_w.is_finite() {
            return Err(FlowError::BadConfig {
                reason: format!("p_chip_w must be non-negative, got {}", self.p_chip_w),
            });
        }
        if !(self.p_vcsel_mw > 0.0) || !self.p_vcsel_mw.is_finite() {
            return Err(FlowError::BadConfig {
                reason: format!("p_vcsel_mw must be positive, got {}", self.p_vcsel_mw),
            });
        }
        if self.oni_count < 2 {
            return Err(FlowError::BadConfig {
                reason: format!("need at least 2 ONIs, got {}", self.oni_count),
            });
        }
        match self.heater {
            HeaterSpec::Fixed { ratio } if !(0.0..=10.0).contains(&ratio) => {
                return Err(FlowError::BadConfig {
                    reason: format!("heater ratio {ratio} outside [0, 10]"),
                });
            }
            HeaterSpec::Explore { max_ratio, samples } if !(max_ratio > 0.0) || samples < 3 => {
                return Err(FlowError::BadConfig {
                    reason: "heater exploration needs max_ratio > 0 and >= 3 samples".into(),
                });
            }
            _ => {}
        }
        Ok(SccConfig {
            placement: PlacementCase::from(self.placement),
            oni_count: self.oni_count,
            layout: OniLayout::from(self.layout),
            activity: self.activity,
            p_chip: Watts::new(self.p_chip_w),
            p_vcsel: Watts::from_milliwatts(self.p_vcsel_mw),
            fidelity: Fidelity::from(self.fidelity),
            ..SccConfig::default()
        })
    }
}

/// Per-ONI line of the report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OniReportRow {
    /// ONI index along the ring.
    pub oni: usize,
    /// Average temperature, °C.
    pub average_c: f64,
    /// Intra-ONI gradient, °C.
    pub gradient_c: f64,
}

/// The full methodology outcome for one spec (serializable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseReport {
    /// Spec name.
    pub name: String,
    /// P_VCSEL used, mW.
    pub p_vcsel_mw: f64,
    /// Chosen heater power, mW.
    pub p_heater_mw: f64,
    /// Heater / VCSEL power ratio actually applied.
    pub heater_ratio: f64,
    /// `Some` when the heater was explored: the ratio found optimal.
    pub explored_optimal_ratio: Option<f64>,
    /// Per-ONI thermal metrics.
    pub onis: Vec<OniReportRow>,
    /// Worst intra-ONI gradient, °C.
    pub worst_gradient_c: f64,
    /// Whether the paper's 1 °C intra-ONI constraint holds.
    pub meets_gradient_constraint: bool,
    /// Spread of ONI average temperatures, °C.
    pub inter_oni_spread_c: f64,
    /// Worst-case SNR, dB.
    pub worst_snr_db: f64,
    /// Mean injected optical power, mW.
    pub mean_injected_mw: f64,
    /// Whether every receiver meets its sensitivity.
    pub all_detected: bool,
    /// `Some(pass)` when the spec declared an SNR target.
    pub meets_snr_target: Option<bool>,
    /// Bit-error rate of the worst link (OOK model on the worst-case SNR).
    pub worst_ber: f64,
    /// Effective per-link bandwidth after re-emission, Gb/s (12 GHz line
    /// rate, 512-bit packets — the Section III-C re-emission penalty).
    pub effective_bandwidth_gbps: f64,
}

impl DseReport {
    /// Renders the report as a markdown document.
    pub fn to_markdown(&self) -> String {
        use core::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "# Thermal-aware DSE report: {}\n", self.name);
        let _ = writeln!(s, "| Quantity | Value |");
        let _ = writeln!(s, "|---|---|");
        let _ = writeln!(s, "| P_VCSEL | {:.3} mW |", self.p_vcsel_mw);
        let _ = writeln!(
            s,
            "| P_heater | {:.3} mW ({:.2} x P_VCSEL{}) |",
            self.p_heater_mw,
            self.heater_ratio,
            if self.explored_optimal_ratio.is_some() { ", explored" } else { "" }
        );
        let _ = writeln!(s, "| Worst intra-ONI gradient | {:.3} °C |", self.worst_gradient_c);
        let _ = writeln!(
            s,
            "| 1 °C gradient constraint | {} |",
            if self.meets_gradient_constraint { "PASS" } else { "FAIL" }
        );
        let _ = writeln!(s, "| Inter-ONI spread | {:.3} °C |", self.inter_oni_spread_c);
        let _ = writeln!(s, "| Worst-case SNR | {:.1} dB |", self.worst_snr_db);
        let _ = writeln!(s, "| Mean injected power | {:.4} mW |", self.mean_injected_mw);
        let _ = writeln!(
            s,
            "| Receiver sensitivity | {} |",
            if self.all_detected { "all detected" } else { "BELOW SENSITIVITY" }
        );
        if let Some(pass) = self.meets_snr_target {
            let _ = writeln!(s, "| SNR target | {} |", if pass { "PASS" } else { "FAIL" });
        }
        let _ = writeln!(s, "| Worst-link BER (OOK) | {:.2e} |", self.worst_ber);
        let _ = writeln!(s, "| Effective bandwidth | {:.3} Gb/s |", self.effective_bandwidth_gbps);
        let _ = writeln!(s, "\n## Per-ONI thermal state\n");
        let _ = writeln!(s, "| ONI | average (°C) | gradient (°C) |");
        let _ = writeln!(s, "|---|---|---|");
        for row in &self.onis {
            let _ = writeln!(s, "| {} | {:.2} | {:.3} |", row.oni, row.average_c, row.gradient_c);
        }
        s
    }
}

/// Runs the complete Figure 3 flow for a spec: thermal study → heater
/// sizing (fixed or explored) → SNR analysis → report.
///
/// # Errors
///
/// Propagates configuration, meshing, solver and analysis errors.
///
/// # Example
///
/// ```no_run
/// use vcsel_core::spec::{run_spec, SystemSpec};
///
/// let report = run_spec(&SystemSpec::paper_operating_point())?;
/// println!("{}", report.to_markdown());
/// # Ok::<(), vcsel_core::FlowError>(())
/// ```
pub fn run_spec(spec: &SystemSpec) -> Result<DseReport, FlowError> {
    let config = spec.to_config()?;
    let flow = DesignFlow::paper();
    let study = ThermalStudy::new(config, flow.simulator())?;
    evaluate_with_study(spec, &study, &flow)
}

/// The heater-sizing → SNR → report tail of [`run_spec`], on an **already
/// built** [`ThermalStudy`]. Batched sweeps ([`crate::BatchPlan`]) call
/// this once per point while re-targeting one shared study, so the
/// expensive assembly/factorization/basis work amortizes across every
/// point that shares the engine. `study` must have been built from
/// `spec.to_config()` (or re-targeted to it via
/// [`ThermalStudy::reconfigured`]).
///
/// # Errors
///
/// Propagates configuration, solver and analysis errors.
pub fn evaluate_with_study(
    spec: &SystemSpec,
    study: &ThermalStudy,
    flow: &DesignFlow,
) -> Result<DseReport, FlowError> {
    let p_vcsel = Watts::from_milliwatts(spec.p_vcsel_mw);
    let p_chip = Watts::new(spec.p_chip_w);

    let (ratio, explored) = match spec.heater {
        HeaterSpec::Fixed { ratio } => (ratio, None),
        HeaterSpec::Explore { max_ratio, samples } => {
            let e = study.explore_heater(p_vcsel, p_chip, max_ratio, samples)?;
            (e.optimal_ratio, Some(e.optimal_ratio))
        }
    };
    let p_heater = p_vcsel * ratio;
    let outcome = study.evaluate(p_vcsel, p_heater, p_chip)?;
    let snr = flow.evaluate_snr(study.system(), &outcome, p_vcsel)?;

    let onis = outcome
        .oni
        .iter()
        .enumerate()
        .map(|(i, o)| OniReportRow {
            oni: i,
            average_c: o.average.value(),
            gradient_c: o.gradient.value(),
        })
        .collect();

    let ber_model = vcsel_photonics::BerModel::ook();
    let link = vcsel_photonics::LinkReliability::paper_default();
    let worst_ber = ber_model.ber_from_snr_db(snr.worst_snr_db);
    let effective_bandwidth_gbps = link.effective_bandwidth_hz(worst_ber) / 1e9;

    Ok(DseReport {
        name: spec.name.clone(),
        p_vcsel_mw: spec.p_vcsel_mw,
        p_heater_mw: p_heater.as_milliwatts(),
        heater_ratio: ratio,
        explored_optimal_ratio: explored,
        onis,
        worst_gradient_c: outcome.worst_gradient().value(),
        meets_gradient_constraint: outcome.meets_gradient_constraint(),
        inter_oni_spread_c: outcome.inter_oni_spread().value(),
        worst_snr_db: snr.worst_snr_db,
        mean_injected_mw: snr.mean_injected.as_milliwatts(),
        all_detected: snr.all_detected,
        meets_snr_target: spec.snr_target_db.map(|t| snr.worst_snr_db >= t),
        worst_ber,
        effective_bandwidth_gbps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A spec that maps onto the tiny test system so unit tests stay fast.
    fn tiny_spec() -> (SystemSpec, SccConfig) {
        let spec = SystemSpec {
            name: "tiny".into(),
            placement: PlacementSpec::Case1,
            oni_count: 2,
            layout: LayoutSpec::Chessboard,
            activity: Activity::Uniform,
            p_chip_w: 2.0,
            p_vcsel_mw: 3.6,
            heater: HeaterSpec::Fixed { ratio: 0.3 },
            fidelity: FidelitySpec::Tiny,
            snr_target_db: None,
        };
        (spec, SccConfig::tiny_test())
    }

    #[test]
    fn spec_round_trips_through_json() {
        let (spec, _) = tiny_spec();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: SystemSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn paper_preset_is_valid() {
        let spec = SystemSpec::paper_operating_point();
        let config = spec.to_config().unwrap();
        assert_eq!(config.oni_count, 8);
        assert!((config.p_vcsel.as_milliwatts() - 3.6).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let (mut spec, _) = tiny_spec();
        spec.p_vcsel_mw = -1.0;
        assert!(spec.to_config().is_err());
        let (mut spec, _) = tiny_spec();
        spec.oni_count = 1;
        assert!(spec.to_config().is_err());
        let (mut spec, _) = tiny_spec();
        spec.heater = HeaterSpec::Explore { max_ratio: 0.0, samples: 9 };
        assert!(spec.to_config().is_err());
        let (mut spec, _) = tiny_spec();
        spec.heater = HeaterSpec::Fixed { ratio: 99.0 };
        assert!(spec.to_config().is_err());
    }

    #[test]
    fn markdown_report_contains_key_rows() {
        let report = DseReport {
            name: "x".into(),
            p_vcsel_mw: 3.6,
            p_heater_mw: 1.08,
            heater_ratio: 0.3,
            explored_optimal_ratio: None,
            onis: vec![OniReportRow { oni: 0, average_c: 55.0, gradient_c: 0.4 }],
            worst_gradient_c: 0.4,
            meets_gradient_constraint: true,
            inter_oni_spread_c: 1.2,
            worst_snr_db: 27.5,
            mean_injected_mw: 0.21,
            all_detected: true,
            meets_snr_target: Some(true),
            worst_ber: 1e-12,
            effective_bandwidth_gbps: 11.999,
        };
        let md = report.to_markdown();
        for needle in ["P_VCSEL", "3.600", "1.080", "PASS", "27.5", "Per-ONI"] {
            assert!(md.contains(needle), "missing {needle} in:\n{md}");
        }
        let json = serde_json::to_string(&report).unwrap();
        let back: DseReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn heater_spec_json_forms() {
        let fixed: HeaterSpec = serde_json::from_str(r#"{"fixed": {"ratio": 0.3}}"#).unwrap();
        assert_eq!(fixed, HeaterSpec::Fixed { ratio: 0.3 });
        let explore: HeaterSpec =
            serde_json::from_str(r#"{"explore": {"max_ratio": 1.0, "samples": 9}}"#).unwrap();
        assert_eq!(explore, HeaterSpec::Explore { max_ratio: 1.0, samples: 9 });
    }
}
