//! P_VCSEL / modulation-current design-space exploration.
//!
//! Paper Section IV-C: "This crucial information allows the exploration of
//! the design space and particularly the driver power consumption. Indeed,
//! P_driver is directly related to the laser modulation current and,
//! therefore, it impacts the laser efficiency and the optical signal
//! power." And Section V-C: "in case a lower SNR is acceptable, P_VCSEL and
//! P_heater can be reduced for energy saving."
//!
//! [`explore_vcsel_power`] sweeps P_VCSEL (heater following at the design
//! ratio), evaluating for each point the thermal field, the worst-case SNR
//! and the total interconnect power, and reports the cheapest point meeting
//! the SNR target and receiver sensitivity.

use serde::Serialize;
use vcsel_units::Watts;

use crate::{DesignFlow, FlowError, ThermalStudy};

/// One sampled operating point of the power exploration.
#[derive(Debug, Clone, Serialize)]
pub struct PowerPoint {
    /// Per-VCSEL dissipated power, mW.
    pub p_vcsel_mw: f64,
    /// Per-ring heater power, mW.
    pub p_heater_mw: f64,
    /// Total interconnect electrical power (lasers + drivers + heaters), W.
    pub interconnect_power_w: f64,
    /// Worst-case SNR, dB.
    pub worst_snr_db: f64,
    /// Worst intra-ONI gradient, °C.
    pub worst_gradient_c: f64,
    /// Mean injected optical power per communication, mW.
    pub mean_injected_mw: f64,
    /// Whether every link meets the receiver sensitivity.
    pub all_detected: bool,
}

/// Outcome of the exploration.
#[derive(Debug, Clone, Serialize)]
pub struct PowerExploration {
    /// The SNR target the search was run against, dB.
    pub snr_target_db: f64,
    /// All sampled points, in ascending P_VCSEL order.
    pub points: Vec<PowerPoint>,
    /// Index of the cheapest point meeting the SNR target, sensitivity and
    /// the 1 °C gradient constraint, if any.
    pub best: Option<usize>,
}

impl PowerExploration {
    /// The selected operating point, if the target was reachable.
    pub fn best_point(&self) -> Option<&PowerPoint> {
        self.best.map(|i| &self.points[i])
    }
}

/// Sweeps P_VCSEL over `p_vcsel_mw` (ascending), with the heater at
/// `heater_ratio × P_VCSEL`, and selects the lowest-power point that meets
/// `snr_target_db`, the −20 dBm sensitivity and the paper's 1 °C gradient
/// constraint.
///
/// The interconnect power accounts one VCSEL + one driver per transmitter
/// site (the paper's worst case P_driver = P_VCSEL) and one heater per
/// receiver site.
///
/// # Errors
///
/// Returns [`FlowError::BadConfig`] for an empty or non-ascending sweep;
/// propagates thermal/device/network errors.
pub fn explore_vcsel_power(
    flow: &DesignFlow,
    study: &ThermalStudy,
    p_chip: Watts,
    p_vcsel_mw: &[f64],
    heater_ratio: f64,
    snr_target_db: f64,
) -> Result<PowerExploration, FlowError> {
    if p_vcsel_mw.is_empty() {
        return Err(FlowError::BadConfig { reason: "empty P_VCSEL sweep".into() });
    }
    if p_vcsel_mw.windows(2).any(|w| w[0] >= w[1]) {
        return Err(FlowError::BadConfig {
            reason: "P_VCSEL sweep must be strictly ascending".into(),
        });
    }
    if !(0.0..=2.0).contains(&heater_ratio) {
        return Err(FlowError::BadConfig {
            reason: format!("heater ratio must lie in [0, 2], got {heater_ratio}"),
        });
    }

    let system = study.system();
    let tx_per_oni = 16.0; // 4 waveguides x 4 lasers (paper Section V-A)
    let rx_per_oni = 16.0;
    let oni_count = system.onis().len() as f64;

    let mut points = Vec::with_capacity(p_vcsel_mw.len());
    let mut best: Option<usize> = None;
    for (i, &pv_mw) in p_vcsel_mw.iter().enumerate() {
        let p_vcsel = Watts::from_milliwatts(pv_mw);
        let p_heater = p_vcsel * heater_ratio;
        let outcome = study.evaluate(p_vcsel, p_heater, p_chip)?;
        let snr = flow.evaluate_snr(system, &outcome, p_vcsel)?;
        // Lasers dissipate P_VCSEL and their drivers the same (worst case).
        let interconnect_power =
            oni_count * (tx_per_oni * 2.0 * p_vcsel.value() + rx_per_oni * p_heater.value());
        let point = PowerPoint {
            p_vcsel_mw: pv_mw,
            p_heater_mw: p_heater.as_milliwatts(),
            interconnect_power_w: interconnect_power,
            worst_snr_db: snr.worst_snr_db,
            worst_gradient_c: outcome.worst_gradient().value(),
            mean_injected_mw: snr.mean_injected.as_milliwatts(),
            all_detected: snr.all_detected,
        };
        let qualifies = point.worst_snr_db >= snr_target_db
            && point.all_detected
            && point.worst_gradient_c < 1.0;
        if best.is_none() && qualifies {
            best = Some(i);
        }
        points.push(point);
    }
    Ok(PowerExploration { snr_target_db, points, best })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsel_arch::SccConfig;

    fn setup() -> &'static (DesignFlow, ThermalStudy) {
        static STUDY: std::sync::OnceLock<(DesignFlow, ThermalStudy)> = std::sync::OnceLock::new();
        STUDY.get_or_init(|| {
            let flow = DesignFlow::paper();
            let study = ThermalStudy::new(
                SccConfig { oni_count: 4, ..SccConfig::tiny_test() },
                flow.simulator(),
            )
            .unwrap();
            (flow, study)
        })
    }

    #[test]
    fn interconnect_power_grows_with_p_vcsel() {
        let (flow, study) = setup();
        let sweep = [0.5, 1.5, 3.0];
        let e = explore_vcsel_power(flow, study, Watts::new(2.0), &sweep, 0.3, 0.0).unwrap();
        assert_eq!(e.points.len(), 3);
        for w in e.points.windows(2) {
            assert!(w[1].interconnect_power_w > w[0].interconnect_power_w);
        }
        // Per point: 4 ONIs x (16 x 2 x P_VCSEL + 16 x 0.3 x P_VCSEL).
        let expected = 4.0 * 16.0 * (2.0 + 0.3) * 0.5e-3;
        assert!((e.points[0].interconnect_power_w - expected).abs() < 1e-12);
    }

    #[test]
    fn unreachable_target_yields_no_best() {
        let (flow, study) = setup();
        let e = explore_vcsel_power(
            flow,
            study,
            Watts::new(2.0),
            &[0.5, 1.0],
            0.3,
            500.0, // absurd SNR target
        )
        .unwrap();
        assert!(e.best.is_none());
        assert!(e.best_point().is_none());
    }

    #[test]
    fn modest_target_picks_cheapest_qualifying_point() {
        let (flow, study) = setup();
        let e = explore_vcsel_power(flow, study, Watts::new(2.0), &[0.25, 0.5, 1.0, 2.0], 0.3, 5.0)
            .unwrap();
        if let Some(best) = e.best_point() {
            assert!(best.worst_snr_db >= 5.0);
            assert!(best.all_detected);
            assert!(best.worst_gradient_c < 1.0);
            // No cheaper point qualifies.
            for p in &e.points {
                if p.p_vcsel_mw < best.p_vcsel_mw {
                    assert!(p.worst_snr_db < 5.0 || !p.all_detected || p.worst_gradient_c >= 1.0);
                }
            }
        }
    }

    #[test]
    fn validation() {
        let (flow, study) = setup();
        assert!(explore_vcsel_power(flow, study, Watts::new(2.0), &[], 0.3, 0.0).is_err());
        assert!(explore_vcsel_power(flow, study, Watts::new(2.0), &[2.0, 1.0], 0.3, 0.0).is_err());
        assert!(explore_vcsel_power(flow, study, Watts::new(2.0), &[1.0, 2.0], 5.0, 0.0).is_err());
    }
}
