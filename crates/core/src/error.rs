//! Error type for the design flow.

use core::fmt;

use vcsel_arch::ArchError;
use vcsel_control::ControlError;
use vcsel_network::NetworkError;
use vcsel_numerics::NumericsError;
use vcsel_photonics::PhotonicsError;
use vcsel_thermal::ThermalError;

/// Errors surfaced by the design methodology.
#[derive(Debug)]
#[non_exhaustive]
pub enum FlowError {
    /// A flow-level configuration problem.
    BadConfig {
        /// Explanation of what is wrong.
        reason: String,
    },
    /// Architecture construction failed.
    Arch(ArchError),
    /// Thermal simulation failed.
    Thermal(ThermalError),
    /// Device-model evaluation failed.
    Photonics(PhotonicsError),
    /// Network/SNR analysis failed.
    Network(NetworkError),
    /// Numerical optimization failed.
    Numerics(NumericsError),
    /// A run-time management policy (remapping, DVFS, calibration) failed.
    Control(ControlError),
    /// Reading or writing a report/checkpoint file failed.
    Report {
        /// The file or directory involved.
        path: String,
        /// The underlying I/O or serialization error.
        reason: String,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadConfig { reason } => write!(f, "bad flow configuration: {reason}"),
            Self::Arch(e) => write!(f, "architecture: {e}"),
            Self::Thermal(e) => write!(f, "thermal simulation: {e}"),
            Self::Photonics(e) => write!(f, "device model: {e}"),
            Self::Network(e) => write!(f, "network analysis: {e}"),
            Self::Numerics(e) => write!(f, "numerics: {e}"),
            Self::Control(e) => write!(f, "runtime management: {e}"),
            Self::Report { path, reason } => write!(f, "report file {path}: {reason}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::BadConfig { .. } | Self::Report { .. } => None,
            Self::Arch(e) => Some(e),
            Self::Thermal(e) => Some(e),
            Self::Photonics(e) => Some(e),
            Self::Network(e) => Some(e),
            Self::Numerics(e) => Some(e),
            Self::Control(e) => Some(e),
        }
    }
}

impl From<ArchError> for FlowError {
    fn from(e: ArchError) -> Self {
        Self::Arch(e)
    }
}

impl From<ThermalError> for FlowError {
    fn from(e: ThermalError) -> Self {
        Self::Thermal(e)
    }
}

impl From<PhotonicsError> for FlowError {
    fn from(e: PhotonicsError) -> Self {
        Self::Photonics(e)
    }
}

impl From<NetworkError> for FlowError {
    fn from(e: NetworkError) -> Self {
        Self::Network(e)
    }
}

impl From<NumericsError> for FlowError {
    fn from(e: NumericsError) -> Self {
        Self::Numerics(e)
    }
}

impl From<ControlError> for FlowError {
    fn from(e: ControlError) -> Self {
        Self::Control(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        use std::error::Error;
        let e = FlowError::from(ThermalError::NoHeatPath);
        assert!(e.to_string().contains("thermal"));
        assert!(e.source().is_some());
        let e = FlowError::from(NetworkError::BadTopology { reason: "x".into() });
        assert!(e.to_string().contains("network"));
        let e = FlowError::BadConfig { reason: "no waveguides".into() };
        assert!(e.source().is_none());
    }
}
