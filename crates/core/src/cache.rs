//! Persistent engine cache: skip assembly + factorization across processes.
//!
//! [`crate::ThermalStudy`] construction is dominated by the solve-engine
//! setup — FVM assembly plus the preconditioner factorization (the whole
//! multigrid hierarchy at fast/paper fidelity). Those depend only on the
//! *operator*, not on the painted powers, so two processes studying the
//! same `(placement, layout, fidelity, ONI count)` configuration rebuild
//! byte-identical state. This module persists that state between
//! processes:
//!
//! * [`EngineBlueprint`] (in `vcsel_thermal`) names the operator with a
//!   content hash and serializes/restores the factored engine,
//! * [`CacheStore`] is the on-disk side — one artifact file per key under
//!   `reports/cache/`, written atomically (temp file + rename, the
//!   [`crate::CheckpointStore`] discipline) so a kill mid-write can never
//!   leave a truncated artifact,
//! * [`EngineCache`] is the policy layer: the `VCSEL_CACHE` environment
//!   variable selects `off` (default), `read` (restore but never write) or
//!   `readwrite`; every probe lands in a global attempt log and a global
//!   hit/miss counter pair, and emits `cache_probe` / `cache_load` /
//!   `cache_store` telemetry spans.
//!
//! A cache entry is invalidated by content, not by time: the key embeds
//! the blueprint's operator content hash, and restore re-checks the hash
//! *stored inside* the artifact, so a key collision or a stale file for a
//! different conductivity field degrades to a typed
//! [`RestoreError`] in the attempt log and a fresh build — never a wrong
//! answer and never a panic.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use vcsel_arch::{OniLayout, PlacementCase, SccConfig};
use vcsel_thermal::{EngineBlueprint, RestoreError, SolveContext};

use crate::report::fidelity_label;
use crate::FlowError;

/// Default on-disk location of the engine cache, relative to the working
/// directory of the report binaries.
pub const DEFAULT_CACHE_DIR: &str = "reports/cache";

/// Cache-wide hit counter (restores served without any factorization).
// ORDER: Relaxed — independent monotonic counters; readers only ever
// compare totals after the probes they care about have returned.
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
/// Cache-wide miss counter (fresh builds: absent entry, rejected entry, or
/// cache disabled).
// ORDER: Relaxed — same single-counter publication story as CACHE_HITS.
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Most recent probe outcomes, newest last (capped; see [`attempt_log`]).
static ATTEMPTS: Mutex<Vec<String>> = Mutex::new(Vec::new());
const ATTEMPT_LOG_CAP: usize = 64;

/// Total engine-cache hits in this process so far.
pub fn cache_hits() -> u64 {
    // ORDER: Relaxed — monotonic counter read, no associated data.
    CACHE_HITS.load(Ordering::Relaxed)
}

/// Total engine-cache misses (including disabled-mode builds) in this
/// process so far.
pub fn cache_misses() -> u64 {
    // ORDER: Relaxed — monotonic counter read, no associated data.
    CACHE_MISSES.load(Ordering::Relaxed)
}

/// The recent probe attempt log: one `"<key>: <outcome>"` line per
/// engine-cache probe, newest last, capped to the last 64 attempts. A
/// rejected artifact keeps its typed [`RestoreError`] rendering, so the
/// log answers *why* a warm run rebuilt from scratch.
pub fn attempt_log() -> Vec<String> {
    ATTEMPTS.lock().map(|log| log.clone()).unwrap_or_default()
}

fn log_attempt(key: &str, outcome: &str) {
    if let Ok(mut log) = ATTEMPTS.lock() {
        if log.len() >= ATTEMPT_LOG_CAP {
            log.remove(0);
        }
        log.push(format!("{key}: {outcome}"));
    }
}

/// Engine-cache policy, selected by the `VCSEL_CACHE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Never touch the cache (the default): every study builds fresh.
    Off,
    /// Restore from existing artifacts but never write new ones.
    Read,
    /// Restore when possible and persist fresh builds for later processes.
    ReadWrite,
}

impl CacheMode {
    /// Parses a `VCSEL_CACHE` value (case-insensitive): `off`, `read` or
    /// `readwrite`.
    pub fn parse(value: &str) -> Option<Self> {
        match value.to_ascii_lowercase().as_str() {
            "off" => Some(Self::Off),
            "read" => Some(Self::Read),
            "readwrite" => Some(Self::ReadWrite),
            _ => None,
        }
    }

    /// Resolves the mode from `VCSEL_CACHE`; unset or unrecognized values
    /// mean [`CacheMode::Off`] (a typo must never activate stale state).
    pub fn from_env() -> Self {
        match std::env::var("VCSEL_CACHE") {
            Ok(value) => Self::parse(&value).unwrap_or(Self::Off),
            Err(_) => Self::Off,
        }
    }

    /// The lower-case label (log lines, bench records).
    pub fn label(self) -> &'static str {
        match self {
            Self::Off => "off",
            Self::Read => "read",
            Self::ReadWrite => "readwrite",
        }
    }

    /// Whether probes may read existing artifacts.
    fn reads(self) -> bool {
        matches!(self, Self::Read | Self::ReadWrite)
    }
}

/// What one [`EngineCache::obtain`] probe did — the per-call twin of the
/// global counters, returned so tests and benches can pin cache behaviour
/// without scraping process-global state.
#[derive(Debug)]
pub enum CacheOutcome {
    /// The cache was off; the engine was built fresh without a probe.
    Disabled,
    /// The engine was restored from disk with zero factorizations.
    Hit,
    /// No artifact existed under the key; the engine was built fresh (and
    /// stored, in readwrite mode).
    MissAbsent,
    /// An artifact existed but restore rejected it; the typed reason is
    /// kept and the engine was built fresh (the bad entry is overwritten
    /// in readwrite mode).
    MissRejected(RestoreError),
}

impl CacheOutcome {
    /// Whether the probe was served from disk.
    pub fn is_hit(&self) -> bool {
        matches!(self, Self::Hit)
    }
}

/// A directory of engine artifacts, one `<key>.vcaf` file per entry.
///
/// Writes are atomic (temp file + rename) so concurrent or interrupted
/// processes can never expose a truncated artifact; a reader either sees
/// the complete old bytes or the complete new bytes. Corrupt bytes are the
/// *restore* layer's problem — the store hands them over verbatim and the
/// checksummed envelope rejects them with a typed error.
#[derive(Debug, Clone)]
pub struct CacheStore {
    dir: PathBuf,
}

impl CacheStore {
    /// A store rooted at `dir` (created lazily on the first
    /// [`CacheStore::store`]).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The artifact path for `key` (sanitized to a portable filename).
    pub fn path(&self, key: &str) -> PathBuf {
        let safe: String = key
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        self.dir.join(format!("{safe}.vcaf"))
    }

    /// Loads the artifact bytes stored under `key`, or `None` when the
    /// file is missing or unreadable (either way: a miss, never an error).
    pub fn load(&self, key: &str) -> Option<Vec<u8>> {
        std::fs::read(self.path(key)).ok()
    }

    /// Stores artifact `bytes` under `key`, creating the directory if
    /// needed. Atomic: bytes land in a `.vcaf.tmp` sibling first and are
    /// renamed over the final path.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Report`] when the directory or file cannot be
    /// written.
    pub fn store(&self, key: &str, bytes: &[u8]) -> Result<(), FlowError> {
        let path = self.path(key);
        let io = |e: std::io::Error| FlowError::Report {
            path: path.display().to_string(),
            reason: e.to_string(),
        };
        std::fs::create_dir_all(&self.dir).map_err(io)?;
        let tmp = path.with_extension("vcaf.tmp");
        std::fs::write(&tmp, bytes).map_err(io)?;
        std::fs::rename(&tmp, &path).map_err(io)
    }
}

/// The engine cache: mode + store + the blueprint protocol.
///
/// One instance per study construction; the counters and attempt log it
/// feeds are process-global, so report binaries can print a summary line
/// regardless of where studies were built.
#[derive(Debug, Clone)]
pub struct EngineCache {
    mode: CacheMode,
    store: CacheStore,
}

impl EngineCache {
    /// The production cache: mode from `VCSEL_CACHE`, artifacts under
    /// [`DEFAULT_CACHE_DIR`].
    pub fn from_env() -> Self {
        Self::new(CacheMode::from_env(), CacheStore::new(DEFAULT_CACHE_DIR))
    }

    /// A cache with an explicit mode and store (tests point this at a
    /// temporary directory instead of mutating the process environment).
    pub fn new(mode: CacheMode, store: CacheStore) -> Self {
        Self { mode, store }
    }

    /// The active policy.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// The backing store.
    pub fn store(&self) -> &CacheStore {
        &self.store
    }

    /// The cache key for `config`'s engine: every operator-determining
    /// configuration axis (placement, ONI layout, fidelity, ONI count —
    /// the same grouping key [`crate::BatchPlan`] shares engines by) plus
    /// the blueprint's operator content hash. Powers and activity are
    /// deliberately absent: they only move the right-hand side.
    pub fn key(config: &SccConfig, content_hash: u64) -> String {
        let placement = match config.placement {
            PlacementCase::Case1 => "case1".to_string(),
            PlacementCase::Case2 => "case2".to_string(),
            PlacementCase::Case3 => "case3".to_string(),
            PlacementCase::Custom { perimeter } => {
                // Bit-exact: two custom rings share a key iff the
                // perimeter is the same IEEE value.
                format!("custom{:016x}", perimeter.value().to_bits())
            }
        };
        let layout = match config.layout {
            OniLayout::Chessboard => "chessboard",
            OniLayout::Clustered => "clustered",
        };
        format!(
            "engine_{placement}_{layout}_{}_oni{}_{content_hash:016x}",
            fidelity_label(config.fidelity),
            config.oni_count
        )
    }

    /// Obtains an engine for `blueprint`: restore it from the store when
    /// the mode allows and the artifact survives revalidation, otherwise
    /// build fresh (persisting the result in readwrite mode). Every probe
    /// is counted, logged and traced; a rejected artifact is returned as
    /// the typed [`CacheOutcome::MissRejected`] alongside the fresh
    /// engine.
    ///
    /// # Errors
    ///
    /// Propagates fresh-build failures ([`FlowError::Thermal`]) and
    /// readwrite store failures ([`FlowError::Report`]). Restore failures
    /// are *not* errors — they degrade to a fresh build.
    pub fn obtain(
        &self,
        config: &SccConfig,
        blueprint: &EngineBlueprint,
    ) -> Result<(SolveContext, CacheOutcome), FlowError> {
        let telemetry = vcsel_telemetry::global();
        if self.mode == CacheMode::Off {
            let ctx = blueprint.build().map_err(FlowError::from)?;
            // ORDER: Relaxed — monotonic counter bump, publishes nothing.
            CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
            return Ok((ctx, CacheOutcome::Disabled));
        }

        let key = Self::key(config, blueprint.content_hash());
        let probe = telemetry.span("cache", "cache_probe");
        let mut rejection = None;
        if self.mode.reads() {
            if let Some(bytes) = self.store.load(&key) {
                let load = telemetry.span("cache", "cache_load");
                match blueprint.restore(&bytes) {
                    Ok(ctx) => {
                        drop(load);
                        drop(probe);
                        // ORDER: Relaxed — monotonic counter bump.
                        let hits = CACHE_HITS.fetch_add(1, Ordering::Relaxed) + 1;
                        telemetry.counter("cache", "engine_cache_hits", hits as f64);
                        log_attempt(&key, "hit (restored with zero factorizations)");
                        return Ok((ctx, CacheOutcome::Hit));
                    }
                    Err(e) => {
                        log_attempt(&key, &format!("rejected: {e}"));
                        rejection = Some(e);
                    }
                }
            } else {
                log_attempt(&key, "absent");
            }
        }
        drop(probe);

        let ctx = blueprint.build().map_err(FlowError::from)?;
        // ORDER: Relaxed — monotonic counter bump, publishes nothing.
        let misses = CACHE_MISSES.fetch_add(1, Ordering::Relaxed) + 1;
        telemetry.counter("cache", "engine_cache_misses", misses as f64);

        if self.mode == CacheMode::ReadWrite {
            // A non-cacheable engine state (escalated ladder, Jacobi/SSOR
            // lead rung) yields no artifact; that is not an error.
            if let Some(bytes) = blueprint.engine_artifact(&ctx) {
                let _store_span = telemetry.span("cache", "cache_store");
                self.store.store(&key, &bytes)?;
                log_attempt(&key, "stored");
            }
        }
        let outcome = match rejection {
            Some(e) => CacheOutcome::MissRejected(e),
            None => CacheOutcome::MissAbsent,
        };
        Ok((ctx, outcome))
    }

    /// One human-readable summary line for the report binaries:
    /// process-wide hit/miss totals and the active mode.
    pub fn summary_line() -> String {
        format!(
            "engine cache [{}]: {} hit(s), {} miss(es)",
            CacheMode::from_env().label(),
            cache_hits(),
            cache_misses()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses_and_defaults_off() {
        assert_eq!(CacheMode::parse("off"), Some(CacheMode::Off));
        assert_eq!(CacheMode::parse("READ"), Some(CacheMode::Read));
        assert_eq!(CacheMode::parse("ReadWrite"), Some(CacheMode::ReadWrite));
        assert_eq!(CacheMode::parse("on"), None);
        for m in [CacheMode::Off, CacheMode::Read, CacheMode::ReadWrite] {
            assert_eq!(CacheMode::parse(m.label()), Some(m));
        }
    }

    #[test]
    fn key_separates_configurations_and_content() {
        let base = SccConfig::tiny_test();
        let k = EngineCache::key(&base, 7);
        assert!(k.contains("tiny") && k.ends_with("0000000000000007"), "{k}");
        assert_ne!(k, EngineCache::key(&base, 8));
        let more_onis = SccConfig { oni_count: base.oni_count + 2, ..base.clone() };
        assert_ne!(k, EngineCache::key(&more_onis, 7));
        let clustered = SccConfig { layout: OniLayout::Clustered, ..base };
        assert_ne!(k, EngineCache::key(&clustered, 7));
    }

    #[test]
    fn store_round_trips_bytes_atomically() {
        let dir = std::env::temp_dir().join(format!("vcsel_cache_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CacheStore::new(&dir);
        assert!(store.load("missing").is_none());
        store.store("engine_case1/odd key", &[1, 2, 3]).unwrap();
        // The key is sanitized to a portable filename and no tmp remains.
        assert_eq!(store.load("engine_case1/odd key"), Some(vec![1, 2, 3]));
        let path = store.path("engine_case1/odd key");
        assert!(path.file_name().unwrap().to_str().unwrap().ends_with(".vcaf"));
        assert!(!path.with_extension("vcaf.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fidelity_axis_lands_in_the_key() {
        let tiny = SccConfig::tiny_test();
        let fast = SccConfig { fidelity: vcsel_arch::Fidelity::Fast, ..tiny.clone() };
        assert_ne!(EngineCache::key(&tiny, 1), EngineCache::key(&fast, 1));
    }
}
