//! Run-time calibration cost model (paper Section III-B).
//!
//! The alternative to this paper's design-time approach is run-time
//! calibration: actively re-tuning every microring to track temperature.
//! The paper quotes the costs from \[17\]: voltage (blue-shift) tuning at
//! 130 µW/nm and heat (red-shift) tuning at 190 µW/nm, and notes that for
//! Corona-scale networks (~1.1 × 10⁶ MRs) calibration exceeds 50 % of the
//! total network power.
//!
//! This module prices the calibration a given thermal field would require,
//! so the design-time heater solution can be compared against the run-time
//! alternative it displaces.

use serde::Serialize;
use vcsel_units::{Celsius, Watts};

use crate::FlowError;

/// Tuning-cost constants from \[17\] (quoted in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TuningCosts {
    /// Blue-shift (voltage) tuning cost, W per nm.
    pub voltage_w_per_nm: f64,
    /// Red-shift (heat) tuning cost, W per nm.
    pub heat_w_per_nm: f64,
    /// Thermo-optic drift, nm/°C.
    pub drift_nm_per_c: f64,
}

impl TuningCosts {
    /// The paper's numbers: 130 µW/nm voltage, 190 µW/nm heat, 0.1 nm/°C.
    pub fn paper() -> Self {
        Self { voltage_w_per_nm: 130e-6, heat_w_per_nm: 190e-6, drift_nm_per_c: 0.1 }
    }
}

impl Default for TuningCosts {
    fn default() -> Self {
        Self::paper()
    }
}

/// Price of re-aligning a set of rings to a common reference temperature.
#[derive(Debug, Clone, Serialize)]
pub struct CalibrationBudget {
    /// Number of rings calibrated.
    pub ring_count: usize,
    /// Total calibration power, W.
    pub total_power_w: f64,
    /// Mean per-ring power, W.
    pub mean_per_ring_w: f64,
    /// The worst single-ring power, W.
    pub worst_per_ring_w: f64,
}

/// Computes the run-time calibration power needed to align every ring
/// (at the given temperatures) onto the *hottest* ring's resonance: cooler
/// rings are red-shifted with heat tuning; the hottest ring needs nothing.
///
/// Aligning "up" to the hottest ring uses only heaters (the paper's
/// hardware); a voltage-tuning variant would align "down" to the coldest.
///
/// # Errors
///
/// Returns [`FlowError::BadConfig`] for an empty temperature set.
///
/// # Example
///
/// ```
/// use vcsel_core::calibration::{heat_calibration_power, TuningCosts};
/// use vcsel_units::Celsius;
///
/// // Two rings 7.7 °C apart: the cold one needs 0.77 nm of red shift at
/// // 190 µW/nm ≈ 146 µW.
/// let budget = heat_calibration_power(
///     &[Celsius::new(50.0), Celsius::new(57.7)],
///     &TuningCosts::paper(),
/// )?;
/// assert!((budget.total_power_w * 1e6 - 146.3).abs() < 1.0);
/// # Ok::<(), vcsel_core::FlowError>(())
/// ```
pub fn heat_calibration_power(
    ring_temperatures: &[Celsius],
    costs: &TuningCosts,
) -> Result<CalibrationBudget, FlowError> {
    if ring_temperatures.is_empty() {
        return Err(FlowError::BadConfig { reason: "no rings to calibrate".into() });
    }
    let hottest = ring_temperatures.iter().map(|t| t.value()).fold(f64::NEG_INFINITY, f64::max);
    let mut total = 0.0;
    let mut worst = 0.0f64;
    for t in ring_temperatures {
        let shift_nm = costs.drift_nm_per_c * (hottest - t.value());
        let p = costs.heat_w_per_nm * shift_nm;
        total += p;
        worst = worst.max(p);
    }
    Ok(CalibrationBudget {
        ring_count: ring_temperatures.len(),
        total_power_w: total,
        mean_per_ring_w: total / ring_temperatures.len() as f64,
        worst_per_ring_w: worst,
    })
}

/// The paper's Corona headline: for `ring_count` rings with an average
/// thermal misalignment of `mean_misalignment`, the calibration power and
/// its share of a given network power budget.
///
/// With the paper's numbers (≈1.1 × 10⁶ MRs and a few °C of spread), the
/// share exceeds 50 % — the motivation for design-time gradient reduction.
///
/// # Errors
///
/// Returns [`FlowError::BadConfig`] for a non-positive network power.
pub fn calibration_share(
    ring_count: usize,
    mean_misalignment: Celsius,
    network_power: Watts,
    costs: &TuningCosts,
) -> Result<f64, FlowError> {
    if !(network_power.value() > 0.0) {
        return Err(FlowError::BadConfig {
            reason: format!("network power must be positive, got {network_power}"),
        });
    }
    let per_ring = costs.heat_w_per_nm * costs.drift_nm_per_c * mean_misalignment.value().max(0.0);
    let total = per_ring * ring_count as f64;
    Ok(total / (total + network_power.value()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_rings_cost_nothing() {
        let budget =
            heat_calibration_power(&[Celsius::new(50.0); 8], &TuningCosts::paper()).unwrap();
        assert_eq!(budget.total_power_w, 0.0);
        assert_eq!(budget.ring_count, 8);
    }

    #[test]
    fn cost_scales_with_spread() {
        let costs = TuningCosts::paper();
        let narrow =
            heat_calibration_power(&[Celsius::new(50.0), Celsius::new(51.0)], &costs).unwrap();
        let wide =
            heat_calibration_power(&[Celsius::new(50.0), Celsius::new(55.0)], &costs).unwrap();
        assert!((wide.total_power_w / narrow.total_power_w - 5.0).abs() < 1e-9);
        assert_eq!(wide.worst_per_ring_w, wide.total_power_w);
    }

    #[test]
    fn corona_headline_exceeds_half() {
        // ~1.1e6 rings, 3 °C average misalignment, ~60 W of network power
        // (Corona's optical power scale): calibration share > 50 %.
        let share = calibration_share(
            1_100_000,
            Celsius::new(3.0),
            Watts::new(60.0),
            &TuningCosts::paper(),
        )
        .unwrap();
        assert!(share > 0.5, "share {share}");
    }

    #[test]
    fn low_gradient_design_pays_little() {
        // The paper's design-time result: keep ONIs within ~1 °C and the
        // residual calibration budget becomes negligible.
        let share =
            calibration_share(4_096, Celsius::new(0.3), Watts::new(5.0), &TuningCosts::paper())
                .unwrap();
        assert!(share < 0.01, "share {share}");
    }

    #[test]
    fn validation() {
        assert!(heat_calibration_power(&[], &TuningCosts::paper()).is_err());
        assert!(
            calibration_share(10, Celsius::new(1.0), Watts::ZERO, &TuningCosts::paper()).is_err()
        );
    }
}
