//! Drivers that regenerate every table and figure of the paper's
//! evaluation (Section V). Shared by the report binaries in `src/bin` and
//! the criterion benches; all outputs are serializable for EXPERIMENTS.md
//! dumps.

use serde::{Deserialize, Serialize};
use vcsel_arch::{Activity, Fidelity, PlacementCase, SccConfig};
use vcsel_network::baselines::{ornoc_loss_reduction, CrossbarTopology, LossCoefficients};
use vcsel_photonics::Vcsel;
use vcsel_units::{Amperes, Celsius, Watts};

use crate::{DesignFlow, FlowError, ThermalStudy};

/// Figure 8-b/8-c: VCSEL efficiency and output-power families.
#[derive(Debug, Clone, Serialize)]
pub struct Figure8 {
    /// Temperatures of the curve family, °C.
    pub temperatures_c: Vec<f64>,
    /// Modulation-current axis, mA.
    pub currents_ma: Vec<f64>,
    /// Wall-plug efficiency η\[temperature\]\[current\].
    pub efficiency: Vec<Vec<f64>>,
    /// Dissipated-power axis samples per temperature: `(P_VCSEL mW, OP mW)`.
    pub output_vs_dissipated: Vec<Vec<(f64, f64)>>,
}

/// Regenerates Figure 8 from the VCSEL library model.
///
/// # Errors
///
/// Propagates device-model errors (none for in-range sweeps).
pub fn figure8(vcsel: &Vcsel) -> Result<Figure8, FlowError> {
    let temperatures_c: Vec<f64> = vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0];
    let currents_ma: Vec<f64> = (0..=60).map(|k| 0.25 * k as f64).collect();
    let mut efficiency = Vec::with_capacity(temperatures_c.len());
    let mut output_vs_dissipated = Vec::with_capacity(temperatures_c.len());
    for &t in &temperatures_c {
        let t = Celsius::new(t);
        let mut row = Vec::with_capacity(currents_ma.len());
        for &i in &currents_ma {
            row.push(vcsel.wall_plug_efficiency(Amperes::from_milliamperes(i), t)?);
        }
        efficiency.push(row);
        output_vs_dissipated.push(
            vcsel
                .dissipated_vs_output_curve(t, 60)
                .into_iter()
                .map(|(p, op)| (p.as_milliwatts(), op.as_milliwatts()))
                .collect(),
        );
    }
    Ok(Figure8 { temperatures_c, currents_ma, efficiency, output_vs_dissipated })
}

/// Figure 9-a: ONI average temperature vs P_VCSEL for several chip powers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure9a {
    /// P_VCSEL axis, mW.
    pub p_vcsel_mw: Vec<f64>,
    /// Chip-power family, W.
    pub p_chip_w: Vec<f64>,
    /// Mean ONI average temperature \[chip power\]\[P_VCSEL\], °C.
    pub average_c: Vec<Vec<f64>>,
}

impl Figure9a {
    /// Average-temperature slope per watt of chip power at P_VCSEL = 0
    /// (paper: ≈ 3.3 °C per 6.25 W, i.e. ≈ 0.53 °C/W).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::BadConfig`] when the figure holds fewer than
    /// two chip powers or an empty temperature row — possible for a figure
    /// deserialized from a truncated artifact, so it is a typed error
    /// rather than a panic.
    pub fn chip_power_slope(&self) -> Result<f64, FlowError> {
        let (first_p, last_p, first_row, last_row) = match (
            self.p_chip_w.first(),
            self.p_chip_w.last(),
            self.average_c.first(),
            self.average_c.last(),
        ) {
            (Some(fp), Some(lp), Some(fr), Some(lr)) if self.p_chip_w.len() >= 2 => {
                (fp, lp, fr, lr)
            }
            _ => {
                return Err(FlowError::BadConfig {
                    reason: "Figure 9-a needs at least two chip powers for a slope".into(),
                })
            }
        };
        match (first_row.first(), last_row.first()) {
            (Some(first), Some(last)) => Ok((last - first) / (last_p - first_p)),
            _ => {
                Err(FlowError::BadConfig { reason: "Figure 9-a temperature rows are empty".into() })
            }
        }
    }

    /// Average-temperature rise per mW of P_VCSEL at the lowest chip power
    /// (paper: ≈ 11 °C per 6 mW, i.e. ≈ 1.8 °C/mW).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::BadConfig`] when the figure holds fewer than
    /// two P_VCSEL points or no temperature rows.
    pub fn vcsel_power_slope(&self) -> Result<f64, FlowError> {
        let row = self.average_c.first().ok_or_else(|| FlowError::BadConfig {
            reason: "Figure 9-a holds no temperature rows".into(),
        })?;
        match (row.first(), row.last(), self.p_vcsel_mw.first(), self.p_vcsel_mw.last()) {
            (Some(first), Some(last), Some(first_p), Some(last_p))
                if self.p_vcsel_mw.len() >= 2 =>
            {
                Ok((last - first) / (last_p - first_p))
            }
            _ => Err(FlowError::BadConfig {
                reason: "Figure 9-a needs at least two P_VCSEL points for a slope".into(),
            }),
        }
    }
}

/// Regenerates Figure 9-a on a prepared thermal study.
///
/// # Errors
///
/// Propagates composition errors.
pub fn figure9a(
    study: &ThermalStudy,
    p_vcsel_mw: &[f64],
    p_chip_w: &[f64],
) -> Result<Figure9a, FlowError> {
    let mut average_c = Vec::with_capacity(p_chip_w.len());
    for &chip in p_chip_w {
        let mut row = Vec::with_capacity(p_vcsel_mw.len());
        for &pv in p_vcsel_mw {
            let outcome =
                study.evaluate(Watts::from_milliwatts(pv), Watts::ZERO, Watts::new(chip))?;
            row.push(outcome.mean_average().value());
        }
        average_c.push(row);
    }
    Ok(Figure9a { p_vcsel_mw: p_vcsel_mw.to_vec(), p_chip_w: p_chip_w.to_vec(), average_c })
}

/// Figure 9-b: intra-ONI gradient vs P_heater for several P_VCSEL.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure9b {
    /// P_VCSEL family, mW.
    pub p_vcsel_mw: Vec<f64>,
    /// P_heater axis, mW.
    pub p_heater_mw: Vec<f64>,
    /// Worst intra-ONI gradient \[P_VCSEL\]\[P_heater\], °C.
    pub gradient_c: Vec<Vec<f64>>,
    /// Heater/VCSEL power ratio minimizing the gradient, per P_VCSEL value
    /// (paper: ≈ 0.3 across the family).
    pub optimal_ratio: Vec<f64>,
}

/// Regenerates Figure 9-b.
///
/// # Errors
///
/// Propagates composition errors.
pub fn figure9b(
    study: &ThermalStudy,
    p_vcsel_mw: &[f64],
    p_heater_mw: &[f64],
    p_chip: Watts,
) -> Result<Figure9b, FlowError> {
    let mut gradient_c = Vec::with_capacity(p_vcsel_mw.len());
    let mut optimal_ratio = Vec::with_capacity(p_vcsel_mw.len());
    for &pv in p_vcsel_mw {
        let pv_w = Watts::from_milliwatts(pv);
        let mut row = Vec::with_capacity(p_heater_mw.len());
        for &ph in p_heater_mw {
            let outcome = study.evaluate(pv_w, Watts::from_milliwatts(ph), p_chip)?;
            row.push(outcome.worst_gradient().value());
        }
        gradient_c.push(row);
        let exploration = study.explore_heater(pv_w, p_chip, 1.0, 5)?;
        optimal_ratio.push(exploration.optimal_ratio);
    }
    Ok(Figure9b {
        p_vcsel_mw: p_vcsel_mw.to_vec(),
        p_heater_mw: p_heater_mw.to_vec(),
        gradient_c,
        optimal_ratio,
    })
}

/// Figure 10: average & gradient temperature with and without the MR
/// heater (P_heater = ratio × P_VCSEL vs 0).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure10 {
    /// P_VCSEL axis, mW.
    pub p_vcsel_mw: Vec<f64>,
    /// Heater ratio used for the "with heater" series.
    pub heater_ratio: f64,
    /// Mean ONI average temperature without heater, °C.
    pub average_without_c: Vec<f64>,
    /// Mean ONI average temperature with heater, °C.
    pub average_with_c: Vec<f64>,
    /// Worst gradient without heater, °C.
    pub gradient_without_c: Vec<f64>,
    /// Worst gradient with heater, °C.
    pub gradient_with_c: Vec<f64>,
}

/// Regenerates Figure 10.
///
/// # Errors
///
/// Propagates composition errors.
pub fn figure10(
    study: &ThermalStudy,
    p_vcsel_mw: &[f64],
    heater_ratio: f64,
    p_chip: Watts,
) -> Result<Figure10, FlowError> {
    let mut f = Figure10 {
        p_vcsel_mw: p_vcsel_mw.to_vec(),
        heater_ratio,
        average_without_c: Vec::new(),
        average_with_c: Vec::new(),
        gradient_without_c: Vec::new(),
        gradient_with_c: Vec::new(),
    };
    for &pv in p_vcsel_mw {
        let pv_w = Watts::from_milliwatts(pv);
        let without = study.evaluate(pv_w, Watts::ZERO, p_chip)?;
        let with = study.evaluate(pv_w, pv_w * heater_ratio, p_chip)?;
        f.average_without_c.push(without.mean_average().value());
        f.average_with_c.push(with.mean_average().value());
        f.gradient_without_c.push(without.worst_gradient().value());
        f.gradient_with_c.push(with.worst_gradient().value());
    }
    Ok(f)
}

/// One bar group of Figure 12: an (activity, placement) combination.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure12Row {
    /// Activity label ("uniform", "diagonal", "random").
    pub activity: String,
    /// Ring length of the placement case, mm.
    pub ring_length_mm: f64,
    /// Worst-case SNR, dB.
    pub worst_snr_db: f64,
    /// Worst-case received signal power, mW.
    pub signal_mw: f64,
    /// Worst-case crosstalk power, mW.
    pub crosstalk_mw: f64,
    /// Spread of ONI average temperatures, °C.
    pub oni_spread_c: f64,
    /// Mean ONI average temperature, °C.
    pub mean_oni_c: f64,
    /// Whether every link meets the −20 dBm sensitivity.
    pub all_detected: bool,
}

/// Regenerates Figure 12 (plus the Figure 11 placements implicitly): the
/// full SNR matrix over activities × placements at the paper's operating
/// point (P_VCSEL = 3.6 mW, P_heater = 1.08 mW).
///
/// Each *placement* requires its own mesh (the ONI ring moves), but the
/// activity patterns on a fixed placement share geometry — so one
/// [`ThermalStudy`] per placement is built and then
/// [`reconfigured`](ThermalStudy::reconfigured) across the activities,
/// reusing the assembled matrix, preconditioner and warm-started fields
/// instead of re-solving from scratch per combination.
///
/// # Errors
///
/// Propagates study construction and analysis errors.
pub fn figure12(
    flow: &DesignFlow,
    fidelity: Fidelity,
    p_chip: Watts,
) -> Result<Vec<Figure12Row>, FlowError> {
    figure12_resumable(flow, fidelity, p_chip, None)
}

/// [`figure12`] with optional per-point checkpointing: each completed
/// (activity, placement) row is stored in `checkpoints` as soon as its
/// solves finish, and a re-run loads stored rows instead of re-solving
/// them. A placement whose three rows are all cached skips thermal-study
/// construction entirely — at `Fidelity::Paper` (minutes of setup plus a
/// response basis of ~2.6 M-unknown solves per placement) this is what
/// makes the nine-study campaign resumable after an interruption.
///
/// # Errors
///
/// Propagates study construction, analysis and checkpoint-write errors.
pub fn figure12_resumable(
    flow: &DesignFlow,
    fidelity: Fidelity,
    p_chip: Watts,
    checkpoints: Option<&crate::CheckpointStore>,
) -> Result<Vec<Figure12Row>, FlowError> {
    let p_vcsel = Watts::from_milliwatts(3.6);
    let p_heater = Watts::from_milliwatts(1.08);
    let activities = [
        ("uniform", Activity::Uniform),
        ("diagonal", Activity::Diagonal),
        ("random", Activity::Random { seed: 42 }),
    ];
    let mut keyed = Vec::new();
    for (case_rank, case) in PlacementCase::paper_cases().into_iter().enumerate() {
        let ring_mm = case.ring_length().as_millimeters();
        // One study per placement (the mesh moves with the ring); the
        // activities on it only re-paint powers via `reconfigured`, and a
        // fully checkpointed placement never builds the study at all.
        let mut study: Option<ThermalStudy> = None;
        for (activity_rank, (name, activity)) in activities.into_iter().enumerate() {
            let rank = (activity_rank, case_rank);
            let key = format!("{name}_{ring_mm}mm");
            if let Some(row) = checkpoints.and_then(|c| c.load::<Figure12Row>(&key)) {
                keyed.push((rank, row));
                continue;
            }
            let config = SccConfig { placement: case, activity, fidelity, ..SccConfig::default() };
            let current = match study.take() {
                Some(prev) => prev.reconfigured(config, flow.simulator())?,
                None => flow.study(config)?,
            };
            let outcome = current.evaluate(p_vcsel, p_heater, p_chip)?;
            let snr = flow.evaluate_snr(current.system(), &outcome, p_vcsel)?;
            let row = Figure12Row {
                activity: name.to_string(),
                ring_length_mm: ring_mm,
                worst_snr_db: snr.worst_snr_db,
                signal_mw: snr.worst_signal.as_milliwatts(),
                crosstalk_mw: snr.worst_crosstalk.as_milliwatts(),
                oni_spread_c: outcome.inter_oni_spread().value(),
                mean_oni_c: outcome.mean_average().value(),
                all_detected: snr.all_detected,
            };
            if let Some(store) = checkpoints {
                store.store(&key, &row)?;
            }
            keyed.push((rank, row));
            study = Some(current);
        }
    }
    // The sweep runs placement-outer to share solve engines; the figure
    // (and its consumers) keep the paper's activity-outer row order.
    keyed.sort_by_key(|(key, _)| *key);
    Ok(keyed.into_iter().map(|(_, row)| row).collect())
}

/// The §III-A baseline comparison (experiment E9).
#[derive(Debug, Clone, Serialize)]
pub struct BaselineComparison {
    /// Crossbar scale (node count).
    pub nodes: usize,
    /// `(name, worst-case loss dB, average loss dB)` per topology.
    pub losses_db: Vec<(String, f64, f64)>,
    /// ORNoC worst-case loss reduction vs the baseline mean (paper: 42.5 %).
    pub worst_case_reduction: f64,
    /// ORNoC average loss reduction vs the baseline mean (paper: 38 %).
    pub average_reduction: f64,
}

/// Regenerates the crossbar loss comparison at `nodes` scale.
///
/// # Errors
///
/// Propagates topology-model errors.
pub fn baseline_comparison(nodes: usize) -> Result<BaselineComparison, FlowError> {
    let k = LossCoefficients::standard();
    let mut losses_db = Vec::new();
    for topo in CrossbarTopology::all() {
        losses_db.push((
            topo.name().to_string(),
            topo.worst_case_loss(nodes, &k)?.value(),
            topo.average_loss(nodes, &k)?.value(),
        ));
    }
    let (worst_case_reduction, average_reduction) = ornoc_loss_reduction(nodes, &k)?;
    Ok(BaselineComparison { nodes, losses_db, worst_case_reduction, average_reduction })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsel_thermal::Simulator;

    fn tiny_study() -> &'static ThermalStudy {
        static STUDY: std::sync::OnceLock<ThermalStudy> = std::sync::OnceLock::new();
        STUDY.get_or_init(|| ThermalStudy::new(SccConfig::tiny_test(), &Simulator::new()).unwrap())
    }

    #[test]
    fn figure8_families_are_ordered() {
        let f = figure8(&Vcsel::paper_default()).unwrap();
        assert_eq!(f.efficiency.len(), 7);
        // Peak efficiency falls monotonically with temperature.
        let peaks: Vec<f64> =
            f.efficiency.iter().map(|row| row.iter().cloned().fold(0.0, f64::max)).collect();
        for w in peaks.windows(2) {
            assert!(w[1] < w[0] + 1e-12, "peaks must fall with temperature: {peaks:?}");
        }
    }

    #[test]
    fn figure9a_slopes_have_paper_signs() {
        let study = tiny_study();
        let f = figure9a(study, &[0.0, 3.0, 6.0], &[1.0, 2.0, 3.0]).unwrap();
        assert!(f.chip_power_slope().unwrap() > 0.0);
        assert!(f.vcsel_power_slope().unwrap() > 0.0);
        // Temperatures grow along both axes.
        assert!(f.average_c[0][0] < f.average_c[2][0]);
        assert!(f.average_c[0][0] < f.average_c[0][2]);
    }

    #[test]
    fn figure9b_has_interior_minimum() {
        let study = tiny_study();
        let f =
            figure9b(study, &[4.0], &[0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0], Watts::new(2.0)).unwrap();
        let row = &f.gradient_c[0];
        let min = row.iter().cloned().fold(f64::INFINITY, f64::min);
        // The best sampled gradient beats the no-heater end point.
        assert!(min < row[0], "heater must help: {row:?}");
        assert!(f.optimal_ratio[0] > 0.0);
    }

    #[test]
    fn figure10_heater_improves_gradient_not_average() {
        let study = tiny_study();
        let f = figure10(study, &[1.0, 6.0], 0.3, Watts::new(2.0)).unwrap();
        for i in 0..2 {
            assert!(
                f.gradient_with_c[i] <= f.gradient_without_c[i] + 1e-9,
                "heater must not worsen the gradient"
            );
            assert!(
                f.average_with_c[i] >= f.average_without_c[i],
                "heater adds power, average must not drop"
            );
        }
    }

    #[test]
    fn figure12_resumable_serves_checkpointed_rows_without_solving() {
        use crate::CheckpointStore;

        let dir = std::env::temp_dir().join(format!("vcsel_fig12_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir);

        // Pre-seed all nine (activity, placement) points with marker rows.
        let activities = ["uniform", "diagonal", "random"];
        for (a_rank, name) in activities.iter().enumerate() {
            for (c_rank, case) in PlacementCase::paper_cases().into_iter().enumerate() {
                let ring_mm = case.ring_length().as_millimeters();
                let row = Figure12Row {
                    activity: name.to_string(),
                    ring_length_mm: ring_mm,
                    worst_snr_db: (10 * a_rank + c_rank) as f64, // marker
                    signal_mw: 1.0,
                    crosstalk_mw: 0.1,
                    oni_spread_c: 0.5,
                    mean_oni_c: 50.0,
                    all_detected: true,
                };
                let key = format!("{name}_{ring_mm}mm");
                store.store(&key, &row).unwrap();
                // Fail fast if the seed/load contract ever desyncs: a
                // silent load miss below would escalate this test into
                // real paper-scale solve campaigns instead of a failure.
                assert!(
                    store.load::<Figure12Row>(&key).is_some(),
                    "seeded checkpoint '{key}' must load back"
                );
            }
        }

        // With every point cached the sweep must not build any thermal
        // study — this returns instantly even at paper fidelity (a real
        // solve campaign would take minutes, which is itself the proof).
        let flow = crate::DesignFlow::paper();
        let rows =
            figure12_resumable(&flow, Fidelity::Paper, Watts::new(12.5), Some(&store)).unwrap();
        assert_eq!(rows.len(), 9);
        for (i, row) in rows.iter().enumerate() {
            // Activity-outer, placement-inner row order (the paper's).
            assert_eq!(row.activity, activities[i / 3]);
            assert_eq!(row.worst_snr_db, (10 * (i / 3) + i % 3) as f64, "marker must round-trip");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn baseline_comparison_matches_paper() {
        let b = baseline_comparison(16).unwrap();
        assert_eq!(b.losses_db.len(), 4);
        assert!((b.worst_case_reduction - 0.425).abs() < 0.08);
        assert!((b.average_reduction - 0.38).abs() < 0.08);
    }
}
