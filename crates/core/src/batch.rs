//! Batched design-space exploration across many system specs.
//!
//! A sweep spec names a base [`SystemSpec`] plus a list of per-point
//! overrides. Points that share the quantities determining the FVM
//! operator — placement, layout, fidelity, ONI count — land in one
//! **batch group** and run through one shared [`ThermalStudy`]: the first
//! point pays meshing, assembly, factorization and the (block-solved)
//! response basis; every later point re-targets that engine with
//! [`ThermalStudy::reconfigured`], which re-paints powers and re-solves
//! the basis warm-started through one
//! [`solve_batch`](vcsel_thermal::SolveContext::solve_batch) call.
//!
//! Results stream per point: each finished [`DseReport`] is checkpointed
//! through the atomic [`CheckpointStore`] as soon as it exists, so a
//! killed sweep resumes from its last completed point, and a failed point
//! surfaces as its own `Err` slot without taking the sweep down.

use serde::{Deserialize, Serialize};
use vcsel_arch::Activity;
use vcsel_telemetry::ArgValue;

use crate::spec::{
    evaluate_with_study, DseReport, FidelitySpec, HeaterSpec, LayoutSpec, PlacementSpec, SystemSpec,
};
use crate::{CheckpointStore, DesignFlow, FlowError, ThermalStudy};

/// One sweep point: the base spec with selected fields overridden. Every
/// field is optional; omitted fields inherit the base spec's value.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SweepOverride {
    /// Point name, echoed in the report and used as the checkpoint key.
    /// Defaults to `point<index>`.
    #[serde(default)]
    pub name: Option<String>,
    /// Override of [`SystemSpec::p_vcsel_mw`].
    #[serde(default)]
    pub p_vcsel_mw: Option<f64>,
    /// Override of [`SystemSpec::p_chip_w`].
    #[serde(default)]
    pub p_chip_w: Option<f64>,
    /// Override of [`SystemSpec::heater`].
    #[serde(default)]
    pub heater: Option<HeaterSpec>,
    /// Override of [`SystemSpec::activity`] (same mesh, repainted powers).
    #[serde(default)]
    pub activity: Option<Activity>,
    /// Override of [`SystemSpec::placement`] (new operator, new group).
    #[serde(default)]
    pub placement: Option<PlacementSpec>,
    /// Override of [`SystemSpec::layout`] (new operator, new group).
    #[serde(default)]
    pub layout: Option<LayoutSpec>,
    /// Override of [`SystemSpec::oni_count`] (new operator, new group).
    #[serde(default)]
    pub oni_count: Option<usize>,
}

/// A file-loadable multi-point sweep: one base spec, many overrides.
///
/// ```json
/// {
///   "name": "vcsel-power-sweep",
///   "base": { "name": "base", "placement": "case1", ... },
///   "points": [
///     { "name": "p1mw", "p_vcsel_mw": 1.0 },
///     { "name": "p3mw", "p_vcsel_mw": 3.0 },
///     { "name": "diag", "activity": "Diagonal" }
///   ]
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Sweep name (labels the report directory).
    pub name: String,
    /// The spec every point starts from.
    pub base: SystemSpec,
    /// Per-point overrides, in evaluation order.
    pub points: Vec<SweepOverride>,
}

impl SweepSpec {
    /// Materializes the per-point [`SystemSpec`]s, applying each override
    /// onto a clone of the base and defaulting missing point names to
    /// `point<index>`.
    pub fn resolve(&self) -> Vec<SystemSpec> {
        self.points
            .iter()
            .enumerate()
            .map(|(i, o)| {
                let mut spec = self.base.clone();
                spec.name = o.name.clone().unwrap_or_else(|| format!("point{i:03}"));
                if let Some(v) = o.p_vcsel_mw {
                    spec.p_vcsel_mw = v;
                }
                if let Some(v) = o.p_chip_w {
                    spec.p_chip_w = v;
                }
                if let Some(v) = o.heater {
                    spec.heater = v;
                }
                if let Some(v) = o.activity {
                    spec.activity = v;
                }
                if let Some(v) = o.placement {
                    spec.placement = v;
                }
                if let Some(v) = o.layout {
                    spec.layout = v;
                }
                if let Some(v) = o.oni_count {
                    spec.oni_count = v;
                }
                spec
            })
            .collect()
    }
}

/// The quantities that determine the FVM operator: two specs with equal
/// keys share a mesh and conduction matrix, so one engine serves both
/// (power and activity differences re-paint, never re-assemble).
type GroupKey = (PlacementSpec, LayoutSpec, FidelitySpec, usize);

fn group_key(spec: &SystemSpec) -> GroupKey {
    (spec.placement, spec.layout, spec.fidelity, spec.oni_count)
}

/// A batched evaluation schedule: sweep points grouped by operator
/// compatibility, each group served by one shared engine.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    specs: Vec<SystemSpec>,
    /// `(key, indices into specs)`, in first-appearance order.
    groups: Vec<(GroupKey, Vec<usize>)>,
}

impl BatchPlan {
    /// Plans the batch: points are grouped by their operator-determining
    /// key (placement, layout, fidelity, ONI count) in first-appearance
    /// order, preserving evaluation order inside each group.
    pub fn new(specs: Vec<SystemSpec>) -> Self {
        let mut groups: Vec<(GroupKey, Vec<usize>)> = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let key = group_key(spec);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(i),
                None => groups.push((key, vec![i])),
            }
        }
        Self { specs, groups }
    }

    /// Plans the batch for a sweep spec's resolved points.
    pub fn for_sweep(sweep: &SweepSpec) -> Self {
        Self::new(sweep.resolve())
    }

    /// Number of engine groups the plan will build (≤ point count; equal
    /// only when no two points share an operator).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Number of sweep points.
    pub fn point_count(&self) -> usize {
        self.specs.len()
    }

    /// The planned specs, in point order.
    pub fn specs(&self) -> &[SystemSpec] {
        &self.specs
    }

    /// Runs every point, one shared engine per group, returning per-point
    /// results in the original point order.
    ///
    /// Failure is per point: a point whose config is invalid or whose
    /// solve fails gets its own `Err` slot and the group's engine carries
    /// on with the next point (rebuilding if the failure poisoned the
    /// study). When `store` is given, each completed report is written
    /// through it under the point's name before the next point starts,
    /// and already-stored points are returned without re-solving.
    pub fn run(
        &self,
        flow: &DesignFlow,
        store: Option<&CheckpointStore>,
    ) -> Vec<Result<DseReport, FlowError>> {
        let sink = vcsel_telemetry::global();
        let mut results: Vec<Option<Result<DseReport, FlowError>>> =
            self.specs.iter().map(|_| None).collect();
        for (gi, (_, members)) in self.groups.iter().enumerate() {
            let _span = {
                let mut span = sink.span("dse", "batch_group");
                span.arg("group", ArgValue::U64(gi as u64));
                span.arg("points", ArgValue::U64(members.len() as u64));
                span
            };
            // The group's shared engine, built at the first point that
            // actually needs a solve and re-targeted for every later one.
            let mut study: Option<ThermalStudy> = None;
            for &pi in members {
                let spec = &self.specs[pi];
                if let Some(cached) = store.and_then(|s| s.load::<DseReport>(&spec.name)) {
                    results[pi] = Some(Ok(cached));
                    continue;
                }
                results[pi] = Some(self.run_point(spec, flow, &mut study));
                if let (Some(s), Some(Ok(report))) = (store, results[pi].as_ref()) {
                    if let Err(e) = s.store(&spec.name, report) {
                        results[pi] = Some(Err(e));
                    }
                }
            }
        }
        results
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    Err(FlowError::BadConfig { reason: "batch plan skipped a point".into() })
                })
            })
            .collect()
    }

    /// One point through the group's shared engine: validate, build or
    /// re-target the study, evaluate. On failure the study slot is left
    /// `None` so the next point rebuilds from scratch instead of running
    /// on a poisoned engine.
    fn run_point(
        &self,
        spec: &SystemSpec,
        flow: &DesignFlow,
        study: &mut Option<ThermalStudy>,
    ) -> Result<DseReport, FlowError> {
        let config = spec.to_config()?;
        let ready = match study.take() {
            Some(prev) => prev.reconfigured(config, flow.simulator())?,
            None => ThermalStudy::new(config, flow.simulator())?,
        };
        let report = evaluate_with_study(spec, &ready, flow);
        *study = Some(ready);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::run_spec;

    fn tiny_base() -> SystemSpec {
        SystemSpec {
            name: "tiny".into(),
            placement: PlacementSpec::Case1,
            // 4 ONIs: the smallest tiny-fidelity system whose SNR is
            // finite, so reports survive a JSON checkpoint round-trip.
            oni_count: 4,
            layout: LayoutSpec::Chessboard,
            activity: Activity::Uniform,
            p_chip_w: 2.0,
            p_vcsel_mw: 3.6,
            heater: HeaterSpec::Fixed { ratio: 0.3 },
            fidelity: FidelitySpec::Tiny,
            snr_target_db: None,
        }
    }

    fn tiny_sweep() -> SweepSpec {
        SweepSpec {
            name: "tiny-sweep".into(),
            base: tiny_base(),
            // Powers picked so every point's SNR is finite: JSON cannot
            // express inf, so a below-sensitivity point (-inf dB) would
            // not survive the checkpoint round-trip.
            points: vec![
                SweepOverride { p_vcsel_mw: Some(3.0), ..Default::default() },
                SweepOverride { p_vcsel_mw: Some(4.5), ..Default::default() },
                SweepOverride {
                    name: Some("diag".into()),
                    activity: Some(Activity::Diagonal),
                    ..Default::default()
                },
            ],
        }
    }

    #[test]
    fn sweep_spec_round_trips_through_json() {
        let sweep = tiny_sweep();
        let json = serde_json::to_string_pretty(&sweep).unwrap();
        let back: SweepSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(sweep, back);
    }

    #[test]
    fn resolve_applies_overrides_and_default_names() {
        let specs = tiny_sweep().resolve();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].name, "point000");
        assert!((specs[0].p_vcsel_mw - 3.0).abs() < 1e-12);
        assert_eq!(specs[2].name, "diag");
        assert_eq!(specs[2].activity, Activity::Diagonal);
        // Untouched fields inherit the base.
        assert_eq!(specs[0].oni_count, 4);
    }

    #[test]
    fn grouping_follows_the_operator_key() {
        let mut sweep = tiny_sweep();
        // A fourth point with a different ONI count needs its own engine.
        sweep.points.push(SweepOverride { oni_count: Some(6), ..Default::default() });
        let plan = BatchPlan::for_sweep(&sweep);
        assert_eq!(plan.point_count(), 4);
        assert_eq!(plan.group_count(), 2);
    }

    #[test]
    fn batched_sweep_matches_run_spec_point_for_point() {
        let plan = BatchPlan::for_sweep(&tiny_sweep());
        assert_eq!(plan.group_count(), 1, "tiny sweep shares one engine");
        let flow = DesignFlow::paper();
        let results = plan.run(&flow, None);
        assert_eq!(results.len(), 3);
        for (spec, result) in plan.specs().iter().zip(&results) {
            let batched = result.as_ref().unwrap();
            let direct = run_spec(spec).unwrap();
            assert_eq!(batched.name, direct.name);
            // The shared engine warm-starts where a fresh study solves
            // cold, so agreement is at CG-tolerance level — the same 1e-5
            // bound the reconfigured-vs-fresh study test uses.
            assert!(
                (batched.worst_gradient_c - direct.worst_gradient_c).abs() < 1e-5,
                "{}: batched {} vs direct {}",
                spec.name,
                batched.worst_gradient_c,
                direct.worst_gradient_c
            );
            // SNR passes the field through the MR resonance alignment,
            // which amplifies solver-tolerance-level temperature noise;
            // 1e-3 dB is still orders below any physical significance.
            assert!(
                (batched.worst_snr_db - direct.worst_snr_db).abs() < 1e-3
                    || batched.worst_snr_db == direct.worst_snr_db,
                "{}: snr {} vs {}",
                spec.name,
                batched.worst_snr_db,
                direct.worst_snr_db
            );
        }
    }

    #[test]
    fn invalid_point_fails_alone() {
        let mut sweep = tiny_sweep();
        sweep.points[1].p_vcsel_mw = Some(-2.0);
        let plan = BatchPlan::for_sweep(&sweep);
        let results = plan.run(&DesignFlow::paper(), None);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(FlowError::BadConfig { .. })));
        assert!(results[2].is_ok(), "later points must survive a poisoned one");
    }

    #[test]
    fn checkpoints_stream_and_resume() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp")
            .join(format!("batch-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir);
        let sweep = tiny_sweep();
        let plan = BatchPlan::for_sweep(&sweep);
        let flow = DesignFlow::paper();
        let first = plan.run(&flow, Some(&store));
        assert!(first.iter().all(Result::is_ok));
        for spec in plan.specs() {
            assert!(
                store.load::<DseReport>(&spec.name).is_some(),
                "point {} must be checkpointed",
                spec.name
            );
        }
        // A resumed run returns the stored reports verbatim.
        let second = plan.run(&flow, Some(&store));
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
