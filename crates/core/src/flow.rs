//! Thermal study: superposition-backed design-space exploration.

use vcsel_arch::{OniThermals, SccConfig, SccSystem};
use vcsel_numerics::golden_section_min;
use vcsel_thermal::{EngineBlueprint, Mesh, ResponseBasis, Simulator, SolveContext, ThermalMap};
use vcsel_units::{Celsius, TemperatureDelta, Watts};

use crate::cache::EngineCache;
use crate::FlowError;

/// Reference powers the response basis is built at (scales are relative to
/// these).
const REF_DEVICE_POWER: Watts = Watts::from_milliwatts(1.0);

/// A solved-and-reusable thermal model of one system configuration.
///
/// Construction performs the expensive FVM solves — the baseline plus one
/// per power group, batched through a single multi-right-hand-side block
/// solve ([`ResponseBasis::build_on_batched`]) so every operator sweep
/// serves all basis columns; every subsequent [`ThermalStudy::evaluate`]
/// is vector arithmetic. The
/// chip-activity *pattern* and all geometry are fixed at construction;
/// P_VCSEL, P_heater and P_chip vary freely.
///
/// The study keeps its [`SolveContext`] — one assembled, factored engine
/// per mesh. [`ThermalStudy::reconfigured`] re-targets that engine at a new
/// configuration, so sweeps that only change the activity pattern (the
/// Figure 12 matrix) re-solve their basis without paying meshing, assembly
/// or preconditioner setup again.
#[derive(Debug)]
pub struct ThermalStudy {
    system: SccSystem,
    ctx: SolveContext,
    basis: ResponseBasis,
    ref_chip_power: Watts,
}

impl ThermalStudy {
    /// Builds the system at reference powers and solves the response basis.
    ///
    /// # Errors
    ///
    /// Propagates architecture and solver errors.
    pub fn new(config: SccConfig, simulator: &Simulator) -> Result<Self, FlowError> {
        // The engine-cache key only reads operator axes (placement, layout,
        // fidelity, ONI count), which reference_system never touches.
        let key_config = config.clone();
        let (system, ref_chip_power) = Self::reference_system(config)?;
        Self::new_from_built(system, ref_chip_power, simulator, &key_config)
    }

    /// Rebuilds the study for `config`, reusing the held solve engine
    /// whenever the new system lives on the same mesh (same floorplan,
    /// placement and fidelity — e.g. only the activity pattern changed).
    /// In that case assembly and preconditioner setup are skipped and the
    /// basis re-solves warm-start from the previous fields; otherwise this
    /// falls back to a full rebuild.
    ///
    /// # Errors
    ///
    /// Propagates architecture and solver errors.
    pub fn reconfigured(mut self, config: SccConfig, sim: &Simulator) -> Result<Self, FlowError> {
        let key_config = config.clone();
        let (system, ref_chip_power) = Self::reference_system(config)?;
        let spec = system.mesh_spec()?;
        // Meshing is cheap next to assembly; build it once and either
        // compare-and-adopt or hand it straight to the fresh engine.
        let mesh = Mesh::build(system.design(), &spec)?;
        if mesh == *self.ctx.mesh() && self.ctx.adopt_design(system.design()).is_ok() {
            // The reuse path must honour the caller's solver options
            // exactly like the rebuild path does.
            self.ctx.set_options(*sim.options());
            self.basis = ResponseBasis::build_on_batched(&mut self.ctx)?;
            self.system = system;
            self.ref_chip_power = ref_chip_power;
            return Ok(self);
        }
        let blueprint = EngineBlueprint::on_mesh(system.design(), mesh);
        let (ctx, _) = EngineCache::from_env().obtain(&key_config, &blueprint)?;
        let mut ctx = ctx.with_options(*sim.options());
        let basis = ResponseBasis::build_on_batched(&mut ctx)?;
        Ok(Self { system, ctx, basis, ref_chip_power })
    }

    fn new_from_built(
        system: SccSystem,
        ref_chip_power: Watts,
        sim: &Simulator,
        key_config: &SccConfig,
    ) -> Result<Self, FlowError> {
        let spec = system.mesh_spec()?;
        // Engine construction goes through the blueprint pipeline: a cache
        // hit restores the assembled operator and factored preconditioner
        // from `reports/cache/` with zero factorizations (`VCSEL_CACHE`).
        let blueprint = EngineBlueprint::new(system.design(), &spec)?;
        let (ctx, _) = EngineCache::from_env().obtain(key_config, &blueprint)?;
        let mut ctx = ctx.with_options(*sim.options());
        let basis = ResponseBasis::build_on_batched(&mut ctx)?;
        Ok(Self { system, ctx, basis, ref_chip_power })
    }

    /// Builds the [`SccSystem`] with every group at its basis reference
    /// power.
    fn reference_system(mut config: SccConfig) -> Result<(SccSystem, Watts), FlowError> {
        // The basis needs non-zero reference powers for every group.
        config.p_vcsel = REF_DEVICE_POWER;
        config.p_driver = Some(REF_DEVICE_POWER);
        config.p_heater = REF_DEVICE_POWER;
        if config.p_chip.value() <= 0.0 {
            config.p_chip = Watts::new(12.5);
        }
        let ref_chip_power = config.p_chip;
        let system = SccSystem::build(&config)?;
        Ok((system, ref_chip_power))
    }

    /// The built system (geometry, topology, ONIs).
    pub fn system(&self) -> &SccSystem {
        &self.system
    }

    /// CG iterations accumulated by the study's solve engine — sweeps use
    /// this to verify that reconfiguration reused cached work.
    pub fn solver_iterations(&self) -> usize {
        self.ctx.total_iterations()
    }

    /// Composes the thermal field for an operating point.
    ///
    /// `p_vcsel` is per laser (the paper's P_VCSEL; the CMOS driver
    /// dissipates the same, the paper's worst case), `p_heater` per
    /// receiver ring, `p_chip` the total chip activity.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::BadConfig`] for negative powers.
    pub fn evaluate(
        &self,
        p_vcsel: Watts,
        p_heater: Watts,
        p_chip: Watts,
    ) -> Result<ThermalOutcome, FlowError> {
        if p_vcsel.value() < 0.0 || p_heater.value() < 0.0 || p_chip.value() < 0.0 {
            return Err(FlowError::BadConfig { reason: "powers must be non-negative".into() });
        }
        let device_scale = p_vcsel / REF_DEVICE_POWER;
        let heater_scale = p_heater / REF_DEVICE_POWER;
        let chip_scale = p_chip / self.ref_chip_power;
        let map = self.basis.compose(&[
            ("chip", chip_scale),
            ("vcsel", device_scale),
            ("driver", device_scale),
            ("heater", heater_scale),
        ])?;
        let oni = self.system.oni_thermals(&map)?;
        Ok(ThermalOutcome { oni, map })
    }

    /// Finds the heater power minimizing the worst intra-ONI gradient for
    /// a given P_VCSEL and chip activity (paper Figure 9-b: the optimum
    /// lands near `P_heater ≈ 0.3 × P_VCSEL`).
    ///
    /// Searches `P_heater ∈ [0, max_ratio × P_VCSEL]`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors; returns [`FlowError::BadConfig`] for a
    /// non-positive `max_ratio` or zero `p_vcsel`.
    pub fn explore_heater(
        &self,
        p_vcsel: Watts,
        p_chip: Watts,
        max_ratio: f64,
        samples: usize,
    ) -> Result<HeaterExploration, FlowError> {
        if !(max_ratio > 0.0) || p_vcsel.value() <= 0.0 {
            return Err(FlowError::BadConfig {
                reason: "heater exploration needs positive P_VCSEL and ratio range".into(),
            });
        }
        let n = samples.max(3);
        let mut curve = Vec::with_capacity(n);
        for k in 0..n {
            let ratio = max_ratio * k as f64 / (n - 1) as f64;
            let p_heater = p_vcsel * ratio;
            let outcome = self.evaluate(p_vcsel, p_heater, p_chip)?;
            curve.push(HeaterPoint {
                p_heater,
                worst_gradient: outcome.worst_gradient(),
                mean_average: outcome.mean_average(),
            });
        }
        // Refine around the grid minimum with a golden-section search (the
        // gradient-vs-heater curve is V-shaped).
        let objective = |ratio: f64| -> f64 {
            match self.evaluate(p_vcsel, p_vcsel * ratio, p_chip) {
                Ok(o) => o.worst_gradient().value(),
                Err(_) => f64::NAN,
            }
        };
        let minimum = golden_section_min(0.0, max_ratio, 1e-3 * max_ratio, objective)?;
        Ok(HeaterExploration {
            p_vcsel,
            curve,
            optimal_ratio: minimum.argmin,
            optimal_gradient: TemperatureDelta::new(minimum.value),
        })
    }
}

/// One sample of the heater design-space sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeaterPoint {
    /// Heater power per receiver ring.
    pub p_heater: Watts,
    /// Worst intra-ONI gradient at this heater power.
    pub worst_gradient: TemperatureDelta,
    /// Mean ONI average temperature at this heater power.
    pub mean_average: Celsius,
}

/// Result of the heater design-space exploration (Figures 9-b and 10).
#[derive(Debug, Clone, PartialEq)]
pub struct HeaterExploration {
    /// The P_VCSEL the exploration was run at.
    pub p_vcsel: Watts,
    /// The sampled gradient-vs-heater curve.
    pub curve: Vec<HeaterPoint>,
    /// `P_heater / P_VCSEL` minimizing the worst gradient.
    pub optimal_ratio: f64,
    /// The gradient achieved at the optimum.
    pub optimal_gradient: TemperatureDelta,
}

impl HeaterExploration {
    /// The optimal heater power.
    pub fn optimal_heater_power(&self) -> Watts {
        self.p_vcsel * self.optimal_ratio
    }
}

/// A composed thermal field plus the extracted per-ONI metrics.
#[derive(Debug, Clone)]
pub struct ThermalOutcome {
    /// Per-ONI thermal metrics, indexed like the system's ONIs.
    pub oni: Vec<OniThermals>,
    /// The full thermal map (for custom queries).
    pub map: ThermalMap,
}

impl ThermalOutcome {
    /// The largest intra-ONI gradient — the quantity the paper constrains
    /// below 1 °C.
    pub fn worst_gradient(&self) -> TemperatureDelta {
        TemperatureDelta::new(self.oni.iter().map(|o| o.gradient.value()).fold(0.0, f64::max))
    }

    /// Mean of the ONI average temperatures.
    pub fn mean_average(&self) -> Celsius {
        Celsius::new(
            self.oni.iter().map(|o| o.average.value()).sum::<f64>() / self.oni.len().max(1) as f64,
        )
    }

    /// Spread (max − min) of the ONI average temperatures — the inter-ONI
    /// misalignment driver in the SNR analysis.
    pub fn inter_oni_spread(&self) -> TemperatureDelta {
        let max = self.oni.iter().map(|o| o.average.value()).fold(f64::NEG_INFINITY, f64::max);
        let min = self.oni.iter().map(|o| o.average.value()).fold(f64::INFINITY, f64::min);
        TemperatureDelta::new(max - min)
    }

    /// Per-ONI average temperatures (input to the SNR analysis).
    pub fn oni_averages(&self) -> Vec<Celsius> {
        self.oni.iter().map(|o| o.average).collect()
    }

    /// Whether every ONI meets the paper's 1 °C intra-ONI gradient
    /// constraint.
    pub fn meets_gradient_constraint(&self) -> bool {
        self.worst_gradient().value() < 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_study() -> &'static ThermalStudy {
        static STUDY: std::sync::OnceLock<ThermalStudy> = std::sync::OnceLock::new();
        STUDY.get_or_init(|| ThermalStudy::new(SccConfig::tiny_test(), &Simulator::new()).unwrap())
    }

    #[test]
    fn evaluate_matches_direct_solve() {
        let study = tiny_study();
        let p_vcsel = Watts::from_milliwatts(3.0);
        let p_heater = Watts::from_milliwatts(0.9);
        let p_chip = Watts::new(2.0);
        let outcome = study.evaluate(p_vcsel, p_heater, p_chip).unwrap();

        // Direct solve of the same operating point.
        let config = SccConfig {
            p_vcsel,
            p_driver: Some(p_vcsel),
            p_heater,
            p_chip,
            ..SccConfig::tiny_test()
        };
        let system = SccSystem::build(&config).unwrap();
        let spec = system.mesh_spec().unwrap();
        let map = Simulator::new().solve(system.design(), &spec).unwrap();
        let direct = system.oni_thermals(&map).unwrap();

        for (a, b) in outcome.oni.iter().zip(&direct) {
            assert!(
                (a.average.value() - b.average.value()).abs() < 1e-4,
                "composed {:?} vs direct {:?}",
                a.average,
                b.average
            );
            assert!((a.gradient.value() - b.gradient.value()).abs() < 1e-4);
        }
    }

    #[test]
    fn more_vcsel_power_more_gradient() {
        let study = tiny_study();
        let chip = Watts::new(2.0);
        let low = study.evaluate(Watts::from_milliwatts(1.0), Watts::ZERO, chip).unwrap();
        let high = study.evaluate(Watts::from_milliwatts(6.0), Watts::ZERO, chip).unwrap();
        assert!(high.worst_gradient() > low.worst_gradient());
        assert!(high.mean_average() > low.mean_average());
    }

    #[test]
    fn heater_reduces_gradient() {
        let study = tiny_study();
        let p_vcsel = Watts::from_milliwatts(6.0);
        let chip = Watts::new(2.0);
        let expl = study.explore_heater(p_vcsel, chip, 1.0, 6).unwrap();
        let without = study.evaluate(p_vcsel, Watts::ZERO, chip).unwrap();
        assert!(
            expl.optimal_gradient.value() < without.worst_gradient().value(),
            "optimum {:?} must beat no-heater {:?}",
            expl.optimal_gradient,
            without.worst_gradient()
        );
        assert!(expl.optimal_ratio > 0.0 && expl.optimal_ratio < 1.0);
        assert_eq!(expl.curve.len(), 6);
    }

    #[test]
    fn reconfigured_activity_reuses_the_engine_and_matches_fresh() {
        use vcsel_arch::Activity;
        let sim = Simulator::new();
        let base = SccConfig::tiny_test();
        let study = ThermalStudy::new(base.clone(), &sim).unwrap();
        let cold_iterations = study.solver_iterations();
        assert!(cold_iterations > 0);

        // Same floorplan/placement, different activity: the engine must be
        // adopted, not rebuilt, and the result must match a fresh study.
        let diagonal = SccConfig { activity: Activity::Diagonal, ..base };
        let reused = study.reconfigured(diagonal.clone(), &sim).unwrap();
        let warm_iterations = reused.solver_iterations() - cold_iterations;
        let fresh = ThermalStudy::new(diagonal, &sim).unwrap();

        let p_vcsel = Watts::from_milliwatts(3.0);
        let a = reused.evaluate(p_vcsel, Watts::ZERO, Watts::new(2.0)).unwrap();
        let b = fresh.evaluate(p_vcsel, Watts::ZERO, Watts::new(2.0)).unwrap();
        for (x, y) in a.oni.iter().zip(&b.oni) {
            assert!(
                (x.average.value() - y.average.value()).abs() < 1e-5,
                "reused {:?} vs fresh {:?}",
                x.average,
                y.average
            );
        }
        assert!(
            warm_iterations < fresh.solver_iterations(),
            "adopted engine must warm-start: {warm_iterations} vs fresh {}",
            fresh.solver_iterations()
        );
    }

    #[test]
    fn negative_power_rejected() {
        let study = tiny_study();
        assert!(study
            .evaluate(Watts::from_milliwatts(-1.0), Watts::ZERO, Watts::new(1.0))
            .is_err());
        assert!(study.explore_heater(Watts::ZERO, Watts::new(1.0), 1.0, 5).is_err());
    }
}
