//! The SNR stage of the methodology: thermal map → VCSEL operating points →
//! per-waveguide ORNoC analysis (paper Sections IV-C and V-C).

use vcsel_arch::SccSystem;
use vcsel_network::{
    assign_channels, traffic, Communication, OniId, SnrAnalyzer, SnrReport, WavelengthGrid,
};
use vcsel_photonics::{TechnologyParams, Vcsel};
use vcsel_thermal::Simulator;
use vcsel_units::{Celsius, Watts};

use crate::{FlowError, ThermalOutcome};

/// Per-waveguide analysis result.
#[derive(Debug, Clone)]
pub struct WaveguideSnr {
    /// Waveguide index (0‥3 for the paper's 4-waveguide interface).
    pub waveguide: usize,
    /// The communications carried.
    pub communications: Vec<Communication>,
    /// The full per-communication report.
    pub report: SnrReport,
}

/// Aggregated SNR outcome of the flow (the content of Figure 12).
#[derive(Debug, Clone)]
pub struct SnrSummary {
    /// Per-waveguide details.
    pub waveguides: Vec<WaveguideSnr>,
    /// Worst-case SNR over all waveguides, dB.
    pub worst_snr_db: f64,
    /// Signal power of the worst-case communication.
    pub worst_signal: Watts,
    /// Crosstalk power of the worst-case communication.
    pub worst_crosstalk: Watts,
    /// Whether every communication meets the −20 dBm receiver sensitivity.
    pub all_detected: bool,
    /// Mean optical power injected into the network per communication
    /// (OP_net — the paper's power-efficiency indicator).
    pub mean_injected: Watts,
}

/// The end-to-end methodology driver (paper Figure 3): owns the simulator,
/// the VCSEL library model and the technology parameters.
#[derive(Debug, Clone)]
pub struct DesignFlow {
    simulator: Simulator,
    vcsel: Vcsel,
    grid: WavelengthGrid,
    params: TechnologyParams,
    waveguide_count: usize,
}

impl DesignFlow {
    /// The paper's configuration: Table 1 technology, the Figure 8 VCSEL
    /// library, 4 waveguides per interface.
    pub fn paper() -> Self {
        Self {
            simulator: Simulator::new(),
            vcsel: Vcsel::paper_default(),
            grid: WavelengthGrid::paper_default(),
            params: TechnologyParams::paper(),
            waveguide_count: 4,
        }
    }

    /// Overrides the VCSEL model (builder style).
    #[must_use]
    pub fn with_vcsel(mut self, vcsel: Vcsel) -> Self {
        self.vcsel = vcsel;
        self
    }

    /// Overrides the thermal simulator (builder style) — e.g. to relax the
    /// CG tolerance for long sweep campaigns (a 1e-6 relative residual is
    /// micro-kelvin-scale error on these systems).
    #[must_use]
    pub fn with_simulator(mut self, simulator: Simulator) -> Self {
        self.simulator = simulator;
        self
    }

    /// Overrides the wavelength grid (builder style).
    #[must_use]
    pub fn with_grid(mut self, grid: WavelengthGrid) -> Self {
        self.grid = grid;
        self
    }

    /// Overrides the number of waveguides per interface (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn with_waveguide_count(mut self, count: usize) -> Self {
        assert!(count > 0, "need at least one waveguide");
        self.waveguide_count = count;
        self
    }

    /// The thermal simulator used by studies created for this flow.
    pub fn simulator(&self) -> &Simulator {
        &self.simulator
    }

    /// Builds a [`ThermalStudy`](crate::ThermalStudy) on this flow's shared simulator — the one
    /// entry point sweep drivers should use, so every study inherits the
    /// flow's solver options instead of constructing private `Simulator`s.
    /// Re-target an existing study with
    /// [`ThermalStudy::reconfigured`](crate::ThermalStudy::reconfigured)
    /// where only powers or activity change.
    ///
    /// # Errors
    ///
    /// Propagates architecture and solver errors.
    pub fn study(&self, config: vcsel_arch::SccConfig) -> Result<crate::ThermalStudy, FlowError> {
        crate::ThermalStudy::new(config, &self.simulator)
    }

    /// The VCSEL library model.
    pub fn vcsel(&self) -> &Vcsel {
        &self.vcsel
    }

    /// Evaluates the worst-case SNR of the system under the thermal field
    /// `outcome`, with each VCSEL driven to dissipate `p_vcsel`.
    ///
    /// The paper's procedure (Section V-C): the ONI average temperature
    /// fixes each VCSEL's operating point via the Figure 8-c curve
    /// (`OP_VCSEL` at the given dissipated power), the taper passes 70 % of
    /// it into the waveguide (`OP_net`), and all-to-all traffic is spread
    /// round-robin over the interface's waveguides.
    ///
    /// # Errors
    ///
    /// Propagates device-model errors (e.g. `p_vcsel` unreachable at the
    /// operating temperature) and network-analysis errors.
    pub fn evaluate_snr(
        &self,
        system: &SccSystem,
        outcome: &ThermalOutcome,
        p_vcsel: Watts,
    ) -> Result<SnrSummary, FlowError> {
        let temps: Vec<Celsius> = outcome.oni_averages();
        let topology = system.topology();
        if temps.len() != topology.oni_count() {
            return Err(FlowError::BadConfig {
                reason: format!(
                    "thermal outcome covers {} ONIs but the topology has {}",
                    temps.len(),
                    topology.oni_count()
                ),
            });
        }

        // Per-ONI injected power: OP_net = taper x OP_VCSEL(P_VCSEL, T_ONI).
        let mut op_net = Vec::with_capacity(temps.len());
        for &t in &temps {
            let op = self.vcsel.operating_point_for_dissipated(p_vcsel, t)?;
            op_net.push(Watts::new(op.optical_power.value() * self.params.taper_coupling));
        }

        // All-to-all pairs spread round-robin over the waveguides.
        let pairs = traffic::all_to_all(topology.oni_count());
        let mut per_wg: Vec<Vec<(OniId, OniId)>> = vec![Vec::new(); self.waveguide_count];
        for (i, p) in pairs.into_iter().enumerate() {
            per_wg[i % self.waveguide_count].push(p);
        }

        let analyzer = SnrAnalyzer::paper_default(self.grid);
        let mut waveguides = Vec::with_capacity(self.waveguide_count);
        let mut worst = f64::INFINITY;
        let mut worst_signal = Watts::ZERO;
        let mut worst_crosstalk = Watts::ZERO;
        let mut all_detected = true;
        let mut injected_sum = 0.0;
        let mut injected_count = 0usize;

        for (w, pairs) in per_wg.into_iter().enumerate() {
            if pairs.is_empty() {
                continue;
            }
            let comms = assign_channels(topology, &pairs)?;
            let powers: Vec<Watts> = comms.iter().map(|c| op_net[c.source().index()]).collect();
            injected_sum += powers.iter().map(|p| p.value()).sum::<f64>();
            injected_count += powers.len();
            let report = analyzer.analyze(topology, &comms, &temps, &powers)?;
            if let Some(w_result) = report.worst() {
                // `<=` so the tracking also captures the crosstalk-free case
                // where every SNR is +inf and `worst` never strictly drops.
                if w_result.snr_db <= worst {
                    worst = w_result.snr_db;
                    worst_signal = w_result.signal;
                    worst_crosstalk = w_result.crosstalk;
                }
            }
            all_detected &= report.all_detected();
            waveguides.push(WaveguideSnr { waveguide: w, communications: comms, report });
        }

        Ok(SnrSummary {
            waveguides,
            worst_snr_db: worst,
            worst_signal,
            worst_crosstalk,
            all_detected,
            mean_injected: Watts::new(injected_sum / injected_count.max(1) as f64),
        })
    }
}

impl Default for DesignFlow {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThermalStudy;
    use vcsel_arch::SccConfig;

    fn study() -> &'static (DesignFlow, ThermalStudy) {
        static STUDY: std::sync::OnceLock<(DesignFlow, ThermalStudy)> = std::sync::OnceLock::new();
        STUDY.get_or_init(|| {
            let flow = DesignFlow::paper();
            let study = ThermalStudy::new(SccConfig::tiny_test(), flow.simulator()).unwrap();
            (flow, study)
        })
    }

    #[test]
    fn end_to_end_snr() {
        let (flow, study) = study();
        let p_vcsel = Watts::from_milliwatts(3.6);
        let outcome =
            study.evaluate(p_vcsel, Watts::from_milliwatts(1.08), Watts::new(2.0)).unwrap();
        let snr = flow.evaluate_snr(study.system(), &outcome, p_vcsel).unwrap();
        assert!(snr.worst_snr_db.is_finite() || snr.worst_snr_db == f64::INFINITY);
        assert!(snr.mean_injected.value() > 0.0);
        assert!(!snr.waveguides.is_empty());
        // 2 ONIs -> 2 all-to-all pairs spread over 4 waveguides: 2 in use.
        assert_eq!(snr.waveguides.len(), 2);
    }

    #[test]
    fn hotter_chip_less_injected_power() {
        // Higher chip activity -> hotter ONIs -> less optical power for the
        // same dissipated P_VCSEL (the paper's efficiency argument).
        let (flow, study) = study();
        let p_vcsel = Watts::from_milliwatts(3.6);
        let cool = study.evaluate(p_vcsel, Watts::ZERO, Watts::new(1.0)).unwrap();
        let hot = study.evaluate(p_vcsel, Watts::ZERO, Watts::new(8.0)).unwrap();
        let snr_cool = flow.evaluate_snr(study.system(), &cool, p_vcsel).unwrap();
        let snr_hot = flow.evaluate_snr(study.system(), &hot, p_vcsel).unwrap();
        assert!(
            snr_hot.mean_injected < snr_cool.mean_injected,
            "hot {} should inject less than cool {}",
            snr_hot.mean_injected,
            snr_cool.mean_injected
        );
    }

    #[test]
    fn waveguide_count_validation() {
        let (flow, study) = study();
        let flow1 = flow.clone().with_waveguide_count(1);
        let p_vcsel = Watts::from_milliwatts(3.6);
        let outcome = study.evaluate(p_vcsel, Watts::ZERO, Watts::new(2.0)).unwrap();
        let snr = flow1.evaluate_snr(study.system(), &outcome, p_vcsel).unwrap();
        assert_eq!(snr.waveguides.len(), 1);
    }
}
