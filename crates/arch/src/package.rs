//! The Figure 7 package stack.
//!
//! "Figure 7 shows the assembly view of the targeted system, which contains
//! the following components: steel back-plate, motherboard, socket, SCC
//! chip with silicon-photonic links and on-chip laser sources, copper lid
//! and heat sink." The annotated thicknesses are: substrate 1 mm, silicon
//! interposer 200 µm, metal layers 15 µm, bonding layer 20 µm, optical
//! layer ~4 µm, silicon 50 µm (×2), epoxy 80 µm, TIM 75 µm, copper lid
//! 2 mm.
//!
//! We model the chip-to-sink path explicitly and collapse everything below
//! the substrate (socket/motherboard/back-plate) into an adiabatic bottom —
//! virtually all heat leaves through the lid in this assembly.

use vcsel_thermal::{Block, BoxRegion, Design, Material, ThermalError};
use vcsel_units::{Meters, SquareMeters};

/// One layer of the vertical stack, bottom-up.
#[derive(Debug, Clone, PartialEq)]
pub struct PackageLayer {
    /// Layer name (also used as the thermal block name).
    pub name: &'static str,
    /// Layer thickness.
    pub thickness: Meters,
    /// Layer material.
    pub material: Material,
}

/// The Figure 7 vertical stack and its derived z-coordinates.
///
/// # Example
///
/// ```
/// use vcsel_arch::PackageStack;
///
/// let stack = PackageStack::scc();
/// // The optical layer sits between the bonding layer and the cap silicon.
/// let z = stack.optical_layer_z();
/// assert!(z.0 < z.1);
/// assert!((stack.total_thickness().as_millimeters() - 3.494).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PackageStack {
    layers: Vec<PackageLayer>,
}

impl PackageStack {
    /// Index of the BEOL (metal) layer holding the electrical heat sources.
    const BEOL: usize = 3;
    /// Index of the bonding layer crossed by the TSVs.
    const BONDING: usize = 4;
    /// Index of the optical device layer.
    const OPTICAL: usize = 5;

    /// The paper's SCC assembly (Figure 7), bottom-up.
    pub fn scc() -> Self {
        let um = Meters::from_micrometers;
        Self {
            layers: vec![
                PackageLayer {
                    name: "substrate",
                    thickness: um(1000.0),
                    material: Material::SUBSTRATE,
                },
                PackageLayer {
                    name: "interposer",
                    thickness: um(200.0),
                    material: Material::SILICON,
                },
                PackageLayer {
                    name: "logic silicon",
                    thickness: um(50.0),
                    material: Material::SILICON,
                },
                PackageLayer { name: "BEOL", thickness: um(15.0), material: Material::BEOL },
                PackageLayer { name: "bonding", thickness: um(20.0), material: Material::BONDING },
                PackageLayer {
                    name: "optical layer",
                    thickness: um(4.0),
                    material: Material::OPTICAL_LAYER,
                },
                PackageLayer {
                    name: "cap silicon",
                    thickness: um(50.0),
                    material: Material::SILICON,
                },
                PackageLayer { name: "epoxy", thickness: um(80.0), material: Material::EPOXY },
                PackageLayer { name: "TIM", thickness: um(75.0), material: Material::TIM },
                PackageLayer {
                    name: "copper lid",
                    thickness: um(2000.0),
                    material: Material::COPPER,
                },
            ],
        }
    }

    /// The layers, bottom-up.
    pub fn layers(&self) -> &[PackageLayer] {
        &self.layers
    }

    /// Total stack thickness.
    pub fn total_thickness(&self) -> Meters {
        self.layers.iter().map(|l| l.thickness).sum()
    }

    fn z_range(&self, index: usize) -> (Meters, Meters) {
        let below: Meters = self.layers[..index].iter().map(|l| l.thickness).sum();
        (below, below + self.layers[index].thickness)
    }

    /// `(z_min, z_max)` of the BEOL layer (electrical heat sources).
    pub fn beol_z(&self) -> (Meters, Meters) {
        self.z_range(Self::BEOL)
    }

    /// `(z_min, z_max)` of the bonding layer (TSV bundles).
    pub fn bonding_z(&self) -> (Meters, Meters) {
        self.z_range(Self::BONDING)
    }

    /// `(z_min, z_max)` of the optical device layer.
    pub fn optical_layer_z(&self) -> (Meters, Meters) {
        self.z_range(Self::OPTICAL)
    }

    /// Die cross-section area for a given footprint.
    pub fn area(&self, width: Meters, depth: Meters) -> SquareMeters {
        width.area(depth)
    }

    /// Adds one passive block per layer to `design`, spanning the full
    /// `width × depth` footprint.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError`] if the footprint is degenerate or exceeds
    /// the design domain.
    pub fn add_layers(
        &self,
        design: &mut Design,
        width: Meters,
        depth: Meters,
    ) -> Result<(), ThermalError> {
        let mut z = Meters::ZERO;
        for layer in &self.layers {
            let region = BoxRegion::new(
                [Meters::ZERO, Meters::ZERO, z],
                [width, depth, z + layer.thickness],
            )?;
            design.try_add_block(Block::passive(layer.name, region, layer.material.clone()))?;
            z += layer.thickness;
        }
        Ok(())
    }
}

impl Default for PackageStack {
    fn default() -> Self {
        Self::scc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scc_stack_thicknesses() {
        let s = PackageStack::scc();
        assert_eq!(s.layers().len(), 10);
        // 1000 + 200 + 50 + 15 + 20 + 4 + 50 + 80 + 75 + 2000 = 3494 µm.
        assert!((s.total_thickness().as_micrometers() - 3494.0).abs() < 1e-6);
    }

    #[test]
    fn layer_order_is_physical() {
        let s = PackageStack::scc();
        let beol = s.beol_z();
        let bonding = s.bonding_z();
        let optical = s.optical_layer_z();
        assert!(beol.1 <= bonding.0 + Meters::new(1e-12));
        assert!(bonding.1 <= optical.0 + Meters::new(1e-12));
        // Optical layer is 4 µm thick.
        assert!(((optical.1 - optical.0).as_micrometers() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn add_layers_builds_blocks() {
        let domain = BoxRegion::new(
            [Meters::ZERO; 3],
            [
                Meters::from_millimeters(5.0),
                Meters::from_millimeters(5.0),
                PackageStack::scc().total_thickness(),
            ],
        )
        .unwrap();
        let mut design = Design::new(domain, Material::SILICON).unwrap();
        PackageStack::scc()
            .add_layers(&mut design, Meters::from_millimeters(5.0), Meters::from_millimeters(5.0))
            .unwrap();
        assert_eq!(design.blocks().len(), 10);
        // Blocks tile the full height without gaps.
        let top = design.blocks().last().unwrap().region().max(2);
        assert!((top - PackageStack::scc().total_thickness()).value().abs() < 1e-12);
    }
}
