//! Chip-activity patterns (the "MPSoC activity" input of Figure 3).
//!
//! The paper evaluates uniform, diagonal and random activities
//! (Section V-C). An activity is a *distribution* of the total chip power
//! over the tile grid; the thermal model multiplies it by P_chip.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A spatial distribution of the chip's activity over its tile grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Activity {
    /// Every tile dissipates the same power.
    #[default]
    Uniform,
    /// The paper's diagonal pattern: "the upper-right and bottom-left parts
    /// of the chip dissipate each 4 W while the upper-left and bottom-right
    /// parts dissipate 8 W each" — i.e. a 2:1 quadrant split along one
    /// diagonal.
    Diagonal,
    /// Random per-tile weights drawn from U(0.5, 1.5), reproducible via the
    /// seed.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// A single tile dissipates `share` of the total; the remainder spreads
    /// uniformly (not in the paper; useful for stress tests).
    Hotspot {
        /// Tile row of the hotspot.
        row: usize,
        /// Tile column of the hotspot.
        col: usize,
        /// Fraction of total power in the hotspot, per mille (0‥=1000).
        per_mille: u16,
    },
}

impl Activity {
    /// Per-tile weights over a `rows × cols` grid, normalized to sum to 1.
    /// Tile `(r, c)` maps to index `r * cols + c`; row 0 is the *bottom* of
    /// the die.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty or a hotspot refers to a tile outside
    /// it.
    pub fn tile_weights(&self, rows: usize, cols: usize) -> Vec<f64> {
        assert!(rows > 0 && cols > 0, "tile grid must be non-empty");
        let n = rows * cols;
        let raw: Vec<f64> = match self {
            Activity::Uniform => vec![1.0; n],
            Activity::Diagonal => {
                let mut w = Vec::with_capacity(n);
                for r in 0..rows {
                    for c in 0..cols {
                        let top = r >= rows / 2;
                        let right = c >= cols / 2;
                        // Upper-left and bottom-right quadrants run hot (2x).
                        let hot = (top && !right) || (!top && right);
                        w.push(if hot { 2.0 } else { 1.0 });
                    }
                }
                w
            }
            Activity::Random { seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                (0..n).map(|_| rng.gen_range(0.5..1.5)).collect()
            }
            Activity::Hotspot { row, col, per_mille } => {
                assert!(*row < rows && *col < cols, "hotspot tile outside the grid");
                assert!(*per_mille <= 1000, "hotspot share must be <= 1000 per mille");
                let share = f64::from(*per_mille) / 1000.0;
                let rest = if n > 1 { (1.0 - share) / (n - 1) as f64 } else { 0.0 };
                let mut w = vec![rest; n];
                w[row * cols + col] = share;
                w
            }
        };
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|v| v / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_normalized(w: &[f64]) {
        let s: f64 = w.iter().sum();
        assert!((s - 1.0).abs() < 1e-12, "weights sum to {s}");
        assert!(w.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn uniform_is_flat() {
        let w = Activity::Uniform.tile_weights(4, 6);
        assert_normalized(&w);
        assert!(w.iter().all(|&v| (v - 1.0 / 24.0).abs() < 1e-15));
    }

    #[test]
    fn diagonal_quadrants_are_2_to_1() {
        let w = Activity::Diagonal.tile_weights(4, 6);
        assert_normalized(&w);
        // Bottom-left tile (r=0, c=0): cool. Bottom-right (r=0, c=5): hot.
        let cool = w[0];
        let hot = w[5];
        assert!((hot / cool - 2.0).abs() < 1e-12);
        // Upper-left (r=3, c=0): hot. Upper-right (r=3, c=5): cool.
        assert!((w[3 * 6] / w[3 * 6 + 5] - 2.0).abs() < 1e-12);
        // Paper's 24 W example: hot quadrants get 8 W, cool get 4 W.
        let quadrant_power: f64 = w.iter().take(3).sum::<f64>() + w[6..9].iter().sum::<f64>();
        assert!((quadrant_power * 24.0 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn random_is_reproducible_and_seed_sensitive() {
        let a = Activity::Random { seed: 7 }.tile_weights(4, 6);
        let b = Activity::Random { seed: 7 }.tile_weights(4, 6);
        let c = Activity::Random { seed: 8 }.tile_weights(4, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_normalized(&a);
    }

    #[test]
    fn hotspot_concentrates_power() {
        let w = Activity::Hotspot { row: 1, col: 2, per_mille: 500 }.tile_weights(4, 6);
        assert_normalized(&w);
        assert!((w[6 + 2] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside the grid")]
    fn hotspot_out_of_grid_panics() {
        let _ = Activity::Hotspot { row: 9, col: 0, per_mille: 100 }.tile_weights(4, 6);
    }
}
