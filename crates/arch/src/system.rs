//! The complete case-study system: SCC + package + ONIs + ring.

use vcsel_network::RingTopology;
use vcsel_thermal::{
    Boundary, BoundaryCondition, BoxRegion, Design, Material, MeshSpec, RefineRegion, ThermalMap,
};
use vcsel_units::{Celsius, Meters, TemperatureDelta, Watts, WattsPerSquareMeterKelvin};

use crate::{
    Activity, ArchError, OniInstance, OniLayout, PackageStack, PlacementCase, SccFloorplan,
};

/// Mesh-resolution presets.
///
/// The paper meshes the ONI regions at 5 µm and the rest of the system at
/// 100–500 µm. [`Fidelity::Paper`] reproduces that; [`Fidelity::Fast`] uses
/// device-pitch resolution (30 µm) over the ONIs for second-scale release
/// runs; [`Fidelity::Tiny`] is for debug-mode unit tests on reduced
/// floorplans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fidelity {
    /// Unit-test scale: ~60 µm over ONIs, 3 mm elsewhere.
    Tiny,
    /// Release-run scale: 30 µm over ONIs (device pitch), 1.5 mm elsewhere.
    Fast,
    /// The paper's meshing: 5 µm over ONIs, 0.5 mm elsewhere. Expensive.
    Paper,
}

impl Fidelity {
    /// (ONI-region cell cap, bulk cell cap) in meters.
    fn resolutions(&self) -> (f64, f64) {
        match self {
            Fidelity::Tiny => (60e-6, 3e-3),
            Fidelity::Fast => (30e-6, 1.5e-3),
            Fidelity::Paper => (5e-6, 0.5e-3),
        }
    }
}

/// Configuration of the case-study build.
#[derive(Debug, Clone, PartialEq)]
pub struct SccConfig {
    /// Tile floorplan (defaults to the 24-tile SCC).
    pub floorplan: SccFloorplan,
    /// ONI placement scenario.
    pub placement: PlacementCase,
    /// Number of ONIs on the ring.
    pub oni_count: usize,
    /// Device layout inside each ONI.
    pub layout: OniLayout,
    /// Dissipated power per VCSEL (the paper's P_VCSEL, 0–6 mW).
    pub p_vcsel: Watts,
    /// Dissipated power per CMOS driver; `None` means "equal to P_VCSEL"
    /// (the paper's worst-case assumption).
    pub p_driver: Option<Watts>,
    /// Heater power per receiver site (the paper's P_heater).
    pub p_heater: Watts,
    /// Total chip (processing) power, 12.5–31.25 W in the paper.
    pub p_chip: Watts,
    /// Spatial activity pattern.
    pub activity: Activity,
    /// Heat-sink coolant temperature.
    pub ambient: Celsius,
    /// Effective sink heat-transfer coefficient on the lid.
    pub heat_transfer: WattsPerSquareMeterKelvin,
    /// Mesh-resolution preset.
    pub fidelity: Fidelity,
}

impl Default for SccConfig {
    fn default() -> Self {
        Self {
            floorplan: SccFloorplan::scc(),
            placement: PlacementCase::Case1,
            oni_count: 8,
            layout: OniLayout::Chessboard,
            p_vcsel: Watts::from_milliwatts(1.0),
            p_driver: None,
            p_heater: Watts::ZERO,
            p_chip: Watts::new(12.5),
            activity: Activity::Uniform,
            ambient: Celsius::new(40.0),
            // Calibrated so the full package shows ~0.5 K/W junction-to-
            // ambient, matching Figure 9-a's ~3.3 °C per 6.25 W slope.
            heat_transfer: WattsPerSquareMeterKelvin::new(7_500.0),
            fidelity: Fidelity::Fast,
        }
    }
}

impl SccConfig {
    /// A reduced configuration for debug-mode unit tests: 2×2 tiles on an
    /// 8 × 6 mm die, 2 ONIs on a 6 mm ring, tiny mesh.
    pub fn tiny_test() -> Self {
        Self {
            floorplan: SccFloorplan::reduced(
                2,
                2,
                Meters::from_millimeters(8.0),
                Meters::from_millimeters(6.0),
            ),
            placement: PlacementCase::Custom { perimeter: Meters::from_millimeters(6.0) },
            oni_count: 2,
            p_chip: Watts::new(2.0),
            fidelity: Fidelity::Tiny,
            ..Self::default()
        }
    }
}

/// Per-ONI thermal metrics extracted from a solved map (the paper's two
/// headline quantities, Section III-D).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OniThermals {
    /// Mean temperature over all device sites of the ONI.
    pub average: Celsius,
    /// Max − min over the device sites — the "gradient temperature".
    pub gradient: TemperatureDelta,
    /// Mean temperature of the VCSEL (transmitter) sites.
    pub vcsel_mean: Celsius,
    /// Mean temperature of the ring (receiver) sites.
    pub ring_mean: Celsius,
}

/// The built case-study system.
#[derive(Debug, Clone)]
pub struct SccSystem {
    design: Design,
    stack: PackageStack,
    onis: Vec<OniInstance>,
    topology: RingTopology,
    fidelity: Fidelity,
}

impl SccSystem {
    /// Builds the thermal design (with power groups `"chip"`, `"vcsel"`,
    /// `"driver"`, `"heater"`), the ONI instances and the ring topology.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::BadConfig`] for inconsistent parameters and
    /// propagates geometry errors.
    pub fn build(config: &SccConfig) -> Result<Self, ArchError> {
        if config.p_vcsel.value() < 0.0
            || config.p_heater.value() < 0.0
            || config.p_chip.value() < 0.0
        {
            return Err(ArchError::BadConfig { reason: "powers must be non-negative".into() });
        }
        let stack = PackageStack::scc();
        let fp = config.floorplan;
        let domain = BoxRegion::new(
            [Meters::ZERO; 3],
            [fp.die_width(), fp.die_depth(), stack.total_thickness()],
        )?;
        let mut design = Design::new(domain, Material::SILICON)?;
        design.set_boundary(
            Boundary::top(),
            BoundaryCondition::Convective { h: config.heat_transfer, ambient: config.ambient },
        );

        stack.add_layers(&mut design, fp.die_width(), fp.die_depth())?;
        let beol = stack.beol_z();
        // The SCC's uncore (SIF + memory controllers) takes ~15 % of the
        // chip power and sits asymmetrically on the periphery — the source
        // of the paper's inter-ONI gradient under uniform activity.
        let p_uncore = config.p_chip * 0.15;
        fp.add_tiles(&mut design, beol.0, beol.1, config.p_chip - p_uncore, &config.activity)?;
        fp.add_uncore(&mut design, beol.0, beol.1, p_uncore)?;

        let placements =
            config.placement.oni_positions(config.oni_count, fp.die_width(), fp.die_depth())?;
        let p_driver = config.p_driver.unwrap_or(config.p_vcsel);
        let mut onis = Vec::with_capacity(placements.len());
        let mut arc_positions = Vec::with_capacity(placements.len());
        for (i, p) in placements.iter().enumerate() {
            let oni = OniInstance::new(
                i,
                p.center_x - OniLayout::width() / 2.0,
                p.center_y - OniLayout::depth() / 2.0,
                config.layout,
            );
            oni.add_devices(
                &mut design,
                stack.beol_z(),
                stack.bonding_z(),
                stack.optical_layer_z(),
                config.p_vcsel,
                p_driver,
                config.p_heater,
            )?;
            arc_positions.push(p.arc_position);
            onis.push(oni);
        }

        let topology = RingTopology::new(config.placement.ring_length(), arc_positions)?;
        Ok(Self { design, stack, onis, topology, fidelity: config.fidelity })
    }

    /// The thermal design, ready for [`vcsel_thermal::Simulator`] or
    /// [`vcsel_thermal::ResponseBasis`].
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The package stack used.
    pub fn stack(&self) -> &PackageStack {
        &self.stack
    }

    /// The placed ONIs.
    pub fn onis(&self) -> &[OniInstance] {
        &self.onis
    }

    /// The ring topology matching the placement.
    pub fn topology(&self) -> &RingTopology {
        &self.topology
    }

    /// The meshing policy for this system's fidelity preset: fine cells
    /// over every ONI (plus a margin), coarse cells elsewhere.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors from refinement construction.
    pub fn mesh_spec(&self) -> Result<MeshSpec, ArchError> {
        let (fine, coarse) = self.fidelity.resolutions();
        let optical = self.stack.optical_layer_z();
        let mut spec =
            MeshSpec::per_axis([Meters::new(coarse), Meters::new(coarse), Meters::new(500e-6)]);
        let margin = Meters::from_micrometers(60.0);
        for oni in &self.onis {
            let r = oni.region(optical.0, optical.1)?;
            let padded = BoxRegion::new(
                [r.min(0) - margin, r.min(1) - margin, Meters::ZERO],
                [r.max(0) + margin, r.max(1) + margin, self.stack.total_thickness()],
            )?;
            spec = spec.with_refinement(RefineRegion::per_axis(
                padded,
                [Meters::new(fine), Meters::new(fine), Meters::new(500e-6)],
            )?);
        }
        Ok(spec)
    }

    /// Extracts the per-ONI thermal metrics from a solved map.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::BadConfig`] if the map does not cover the ONI
    /// regions (i.e. it was solved on a different design).
    pub fn oni_thermals(&self, map: &ThermalMap) -> Result<Vec<OniThermals>, ArchError> {
        let optical = self.stack.optical_layer_z();
        let mut out = Vec::with_capacity(self.onis.len());
        for oni in &self.onis {
            let mut site_temps: Vec<f64> = Vec::with_capacity(32);
            let mut vcsel = Vec::with_capacity(16);
            let mut ring = Vec::with_capacity(16);
            for r in oni.tx_regions(optical.0, optical.1)? {
                let t = map.average_in(&r).ok_or_else(|| ArchError::BadConfig {
                    reason: "thermal map does not cover the ONI regions".into(),
                })?;
                site_temps.push(t.value());
                vcsel.push(t.value());
            }
            for r in oni.rx_regions(optical.0, optical.1)? {
                let t = map.average_in(&r).ok_or_else(|| ArchError::BadConfig {
                    reason: "thermal map does not cover the ONI regions".into(),
                })?;
                site_temps.push(t.value());
                ring.push(t.value());
            }
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            let max = site_temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let min = site_temps.iter().cloned().fold(f64::INFINITY, f64::min);
            out.push(OniThermals {
                average: Celsius::new(mean(&site_temps)),
                gradient: TemperatureDelta::new(max - min),
                vcsel_mean: Celsius::new(mean(&vcsel)),
                ring_mean: Celsius::new(mean(&ring)),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsel_thermal::Simulator;

    #[test]
    fn tiny_system_builds_and_solves() {
        let config = SccConfig {
            p_vcsel: Watts::from_milliwatts(2.0),
            p_heater: Watts::from_milliwatts(0.6),
            ..SccConfig::tiny_test()
        };
        let system = SccSystem::build(&config).unwrap();
        assert_eq!(system.onis().len(), 2);
        assert_eq!(system.topology().oni_count(), 2);

        let groups = system.design().group_names();
        for g in ["chip", "vcsel", "driver", "heater"] {
            assert!(groups.contains(&g), "missing group {g}");
        }
        // 2 ONIs x 16 VCSELs x 2 mW = 64 mW.
        assert!((system.design().group_power("vcsel").as_milliwatts() - 64.0).abs() < 1e-9);

        let spec = system.mesh_spec().unwrap();
        let map = Simulator::new().solve(system.design(), &spec).unwrap();
        let thermals = system.oni_thermals(&map).unwrap();
        assert_eq!(thermals.len(), 2);
        for t in &thermals {
            // Devices run above ambient, below boiling.
            assert!(t.average.value() > 40.0, "average {:?}", t.average);
            assert!(t.average.value() < 100.0);
            // VCSELs are the hot sites without heaters at parity.
            assert!(t.vcsel_mean >= t.ring_mean);
            assert!(t.gradient.value() >= 0.0);
        }
        assert!(map.energy_balance_defect() < 1e-6);
    }

    #[test]
    fn vcsel_power_raises_gradient() {
        let solve = |p_mw: f64| {
            let config =
                SccConfig { p_vcsel: Watts::from_milliwatts(p_mw), ..SccConfig::tiny_test() };
            let system = SccSystem::build(&config).unwrap();
            let spec = system.mesh_spec().unwrap();
            let map = Simulator::new().solve(system.design(), &spec).unwrap();
            system.oni_thermals(&map).unwrap()[0]
        };
        let low = solve(1.0);
        let high = solve(6.0);
        assert!(
            high.gradient.value() > low.gradient.value(),
            "gradient must grow with P_VCSEL: {:?} vs {:?}",
            low.gradient,
            high.gradient
        );
        assert!(high.average > low.average);
    }

    #[test]
    fn negative_power_rejected() {
        let config = SccConfig { p_vcsel: Watts::from_milliwatts(-1.0), ..SccConfig::tiny_test() };
        assert!(matches!(SccSystem::build(&config), Err(ArchError::BadConfig { .. })));
    }

    #[test]
    fn full_scc_builds() {
        // Build-only check of the full-die system (no solve in debug tests).
        let system = SccSystem::build(&SccConfig::default()).unwrap();
        assert_eq!(system.onis().len(), 8);
        // 10 layers + 24 tiles + 5 uncore blocks + 8 ONIs x 64 device blocks.
        assert_eq!(system.design().blocks().len(), 10 + 24 + 5 + 8 * 64);
        assert!((system.topology().length().as_millimeters() - 18.0).abs() < 1e-9);
        assert!(system.mesh_spec().is_ok());
    }
}
