//! The SCC tile floorplan.
//!
//! Intel's SCC is a 24-tile (6 × 4), 48-core die of ≈ 567 mm². We model a
//! 26.4 mm × 21.6 mm die split into 4.4 mm × 5.4 mm tiles; each tile is one
//! heat-source block in the BEOL layer whose power follows the activity
//! pattern.

use vcsel_thermal::{Block, BoxRegion, Design, Material, ThermalError};
use vcsel_units::{Meters, Watts};

use crate::Activity;

/// The 6 × 4 tile grid of the SCC die.
///
/// # Example
///
/// ```
/// use vcsel_arch::SccFloorplan;
///
/// let fp = SccFloorplan::scc();
/// assert_eq!(fp.tile_count(), 24);
/// assert!((fp.die_width().as_millimeters() - 26.4).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SccFloorplan {
    die_width: f64,
    die_depth: f64,
    cols: usize,
    rows: usize,
}

impl SccFloorplan {
    /// The paper's 24-tile SCC: 26.4 mm × 21.6 mm, 6 columns × 4 rows.
    pub fn scc() -> Self {
        Self { die_width: 26.4e-3, die_depth: 21.6e-3, cols: 6, rows: 4 }
    }

    /// A reduced floorplan for fast tests: same aspect, `cols × rows`
    /// tiles, scaled die.
    ///
    /// # Panics
    ///
    /// Panics if either grid dimension is zero.
    pub fn reduced(cols: usize, rows: usize, die_width: Meters, die_depth: Meters) -> Self {
        assert!(cols > 0 && rows > 0, "tile grid must be non-empty");
        Self { die_width: die_width.value(), die_depth: die_depth.value(), cols, rows }
    }

    /// Die width (x).
    pub fn die_width(&self) -> Meters {
        Meters::new(self.die_width)
    }

    /// Die depth (y).
    pub fn die_depth(&self) -> Meters {
        Meters::new(self.die_depth)
    }

    /// Number of tile columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of tile rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total tile count.
    pub fn tile_count(&self) -> usize {
        self.cols * self.rows
    }

    /// The x/y footprint of tile `(row, col)`; row 0 is at y = 0.
    ///
    /// # Panics
    ///
    /// Panics if the tile is outside the grid.
    pub fn tile_footprint(&self, row: usize, col: usize) -> (Meters, Meters, Meters, Meters) {
        assert!(row < self.rows && col < self.cols, "tile ({row},{col}) outside the grid");
        let tw = self.die_width / self.cols as f64;
        let td = self.die_depth / self.rows as f64;
        (
            Meters::new(col as f64 * tw),
            Meters::new(row as f64 * td),
            Meters::new((col + 1) as f64 * tw),
            Meters::new((row + 1) as f64 * td),
        )
    }

    /// Adds one heat-source block per tile to `design`, placing the tiles
    /// in the z-range `[z_min, z_max]` (the BEOL layer) with per-tile power
    /// `p_chip × weight` from the activity pattern. All tile blocks join the
    /// `"chip"` power group.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError`] if a tile falls outside the design domain.
    pub fn add_tiles(
        &self,
        design: &mut Design,
        z_min: Meters,
        z_max: Meters,
        p_chip: Watts,
        activity: &Activity,
    ) -> Result<(), ThermalError> {
        let weights = activity.tile_weights(self.rows, self.cols);
        for row in 0..self.rows {
            for col in 0..self.cols {
                let (x0, y0, x1, y1) = self.tile_footprint(row, col);
                let region = BoxRegion::new([x0, y0, z_min], [x1, y1, z_max])?;
                let power = p_chip * weights[row * self.cols + col];
                design.try_add_block(
                    Block::heat_source(format!("tile({row},{col})"), region, Material::BEOL, power)
                        .with_group("chip"),
                )?;
            }
        }
        Ok(())
    }

    /// Adds the SCC's *uncore* periphery: the system interface (SIF) along
    /// the bottom die edge and the four DDR3 memory controllers near the
    /// left/right edges (Figure 1-a).
    ///
    /// The paper's Section V-C notes that "the asymmetric structure of the
    /// SCC chip leads to a 3 °C difference among the ONIs" even under
    /// uniform tile activity — this periphery is what provides that
    /// asymmetry. The blocks dissipate `p_uncore` in total (SIF 60 %, each
    /// MC 10 %), overlaid on the tile power, and join the `"chip"` group so
    /// superposition sweeps scale them with the activity.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError`] if the die is too small to host the
    /// periphery strips.
    pub fn add_uncore(
        &self,
        design: &mut Design,
        z_min: Meters,
        z_max: Meters,
        p_uncore: Watts,
    ) -> Result<(), ThermalError> {
        let w = self.die_width;
        let d = self.die_depth;
        // SIF: full-width strip along the bottom edge, 8 % of the die deep.
        let sif = BoxRegion::new(
            [Meters::ZERO, Meters::ZERO, z_min],
            [Meters::new(w), Meters::new(0.08 * d), z_max],
        )?;
        design.try_add_block(
            Block::heat_source("SIF", sif, Material::BEOL, p_uncore * 0.6).with_group("chip"),
        )?;
        // Four DDR3 MCs: small blocks inset from the left/right edges, the
        // left pair sitting lower than the right pair (the real die is not
        // mirror symmetric).
        let mc_w = 0.06 * w;
        let mc_d = 0.15 * d;
        let mcs = [
            ("MC0", 0.02 * w, 0.18 * d),
            ("MC1", 0.02 * w, 0.48 * d),
            ("MC2", 0.92 * w, 0.32 * d),
            ("MC3", 0.92 * w, 0.66 * d),
        ];
        for (name, x, y) in mcs {
            let region = BoxRegion::new(
                [Meters::new(x), Meters::new(y), z_min],
                [Meters::new(x + mc_w), Meters::new(y + mc_d), z_max],
            )?;
            design.try_add_block(
                Block::heat_source(name, region, Material::BEOL, p_uncore * 0.1).with_group("chip"),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsel_thermal::{Design, Material};

    #[test]
    fn tiles_tile_the_die() {
        let fp = SccFloorplan::scc();
        let (x0, y0, ..) = fp.tile_footprint(0, 0);
        assert_eq!(x0.value(), 0.0);
        assert_eq!(y0.value(), 0.0);
        let (.., x1, y1) = fp.tile_footprint(3, 5);
        assert!((x1 - fp.die_width()).value().abs() < 1e-12);
        assert!((y1 - fp.die_depth()).value().abs() < 1e-12);
    }

    #[test]
    fn add_tiles_conserves_power() {
        let fp = SccFloorplan::scc();
        let domain = BoxRegion::new(
            [Meters::ZERO; 3],
            [fp.die_width(), fp.die_depth(), Meters::from_millimeters(1.0)],
        )
        .unwrap();
        let mut d = Design::new(domain, Material::SILICON).unwrap();
        fp.add_tiles(
            &mut d,
            Meters::ZERO,
            Meters::from_micrometers(15.0),
            Watts::new(25.0),
            &Activity::Diagonal,
        )
        .unwrap();
        assert_eq!(d.blocks().len(), 24);
        assert!((d.total_power().value() - 25.0).abs() < 1e-9);
        assert!((d.group_power("chip").value() - 25.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "outside the grid")]
    fn tile_out_of_grid_panics() {
        let _ = SccFloorplan::scc().tile_footprint(4, 0);
    }
}
