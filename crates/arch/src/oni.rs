//! Optical Network Interface layout (Figure 1-b).
//!
//! Each ONI hosts 4 waveguides; on each waveguide, 4 transmitters (VCSEL +
//! CMOS driver + TSV bundle) and 4 receivers (microring + heater +
//! photodetector) are placed *alternately* — the "chessboard-like layout"
//! the paper proposes so that VCSEL heat pre-warms the neighboring rings
//! and the residual gradient can be closed with small heater powers.
//!
//! A clustered variant (all transmitters on one side) is provided for the
//! layout ablation study.

use vcsel_thermal::{Block, BoxRegion, Design, Material, ThermalError};
use vcsel_units::{Meters, Watts};

/// What occupies one device site of the ONI grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// VCSEL + TSV bundle + CMOS driver below.
    Transmitter,
    /// Microring + trimming heater + photodetector.
    Receiver,
}

/// Device-placement policy inside an ONI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OniLayout {
    /// The paper's alternating layout (Figure 1-b).
    Chessboard,
    /// All transmitters grouped on the left half — the layout the paper
    /// argues *against*; used by the ablation bench.
    Clustered,
}

impl OniLayout {
    /// Device-site edge length (VCSEL footprint class: 15–30 µm).
    pub fn site_size() -> Meters {
        Meters::from_micrometers(30.0)
    }

    /// Pitch between waveguide rows (site + waveguide clearance).
    pub fn row_pitch() -> Meters {
        Meters::from_micrometers(50.0)
    }

    /// Number of waveguide rows per ONI.
    pub const ROWS: usize = 4;
    /// Number of device sites per row (4 TX + 4 RX).
    pub const COLS: usize = 8;

    /// ONI footprint width (x).
    pub fn width() -> Meters {
        Self::site_size() * Self::COLS as f64
    }

    /// ONI footprint depth (y).
    pub fn depth() -> Meters {
        Self::row_pitch() * (Self::ROWS - 1) as f64 + Self::site_size()
    }

    /// What sits at grid position `(row, col)`.
    pub fn site_kind(&self, row: usize, col: usize) -> SiteKind {
        match self {
            OniLayout::Chessboard => {
                if (row + col).is_multiple_of(2) {
                    SiteKind::Transmitter
                } else {
                    SiteKind::Receiver
                }
            }
            OniLayout::Clustered => {
                if col < Self::COLS / 2 {
                    SiteKind::Transmitter
                } else {
                    SiteKind::Receiver
                }
            }
        }
    }
}

/// One placed ONI: a layout at a position on the optical layer.
#[derive(Debug, Clone, PartialEq)]
pub struct OniInstance {
    index: usize,
    origin_x: f64,
    origin_y: f64,
    layout: OniLayout,
}

impl OniInstance {
    /// Places ONI number `index` with its minimum corner at `(x, y)`.
    pub fn new(index: usize, x: Meters, y: Meters, layout: OniLayout) -> Self {
        Self { index, origin_x: x.value(), origin_y: y.value(), layout }
    }

    /// The ONI's index on the ring.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The layout policy.
    pub fn layout(&self) -> OniLayout {
        self.layout
    }

    /// Center of the ONI footprint.
    pub fn center(&self) -> [Meters; 2] {
        [
            Meters::new(self.origin_x) + OniLayout::width() / 2.0,
            Meters::new(self.origin_y) + OniLayout::depth() / 2.0,
        ]
    }

    /// The ONI footprint extruded over `[z0, z1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError`] for a degenerate z-range.
    pub fn region(&self, z0: Meters, z1: Meters) -> Result<BoxRegion, ThermalError> {
        BoxRegion::new(
            [Meters::new(self.origin_x), Meters::new(self.origin_y), z0],
            [
                Meters::new(self.origin_x) + OniLayout::width(),
                Meters::new(self.origin_y) + OniLayout::depth(),
                z1,
            ],
        )
    }

    fn site_origin(&self, row: usize, col: usize) -> (Meters, Meters) {
        (
            Meters::new(self.origin_x) + OniLayout::site_size() * col as f64,
            Meters::new(self.origin_y) + OniLayout::row_pitch() * row as f64,
        )
    }

    fn site_region(
        &self,
        row: usize,
        col: usize,
        z0: Meters,
        z1: Meters,
    ) -> Result<BoxRegion, ThermalError> {
        let (x, y) = self.site_origin(row, col);
        BoxRegion::new([x, y, z0], [x + OniLayout::site_size(), y + OniLayout::site_size(), z1])
    }

    /// The VCSEL device footprint centered in a transmitter site: the
    /// paper's 15 µm × 30 µm mesa.
    fn vcsel_region(
        &self,
        row: usize,
        col: usize,
        z0: Meters,
        z1: Meters,
    ) -> Result<BoxRegion, ThermalError> {
        let (x, y) = self.site_origin(row, col);
        let dx = (OniLayout::site_size() - Meters::from_micrometers(15.0)) / 2.0;
        BoxRegion::new(
            [x + dx, y, z0],
            [x + dx + Meters::from_micrometers(15.0), y + OniLayout::site_size(), z1],
        )
    }

    /// The microring + heater footprint centered in a receiver site: the
    /// paper's 10 µm-diameter ring. The small area is what makes the ring's
    /// per-mW self-heating ~3× the VCSEL's — the physical origin of the
    /// P_heater ≈ 0.3 × P_VCSEL optimum.
    fn ring_region(
        &self,
        row: usize,
        col: usize,
        z0: Meters,
        z1: Meters,
    ) -> Result<BoxRegion, ThermalError> {
        let (x, y) = self.site_origin(row, col);
        let d = (OniLayout::site_size() - Meters::from_micrometers(10.0)) / 2.0;
        BoxRegion::new(
            [x + d, y + d, z0],
            [x + d + Meters::from_micrometers(10.0), y + d + Meters::from_micrometers(10.0), z1],
        )
    }

    /// Regions of all transmitter sites over `[z0, z1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError`] for a degenerate z-range.
    pub fn tx_regions(&self, z0: Meters, z1: Meters) -> Result<Vec<BoxRegion>, ThermalError> {
        self.kind_regions(SiteKind::Transmitter, z0, z1)
    }

    /// Regions of all receiver sites over `[z0, z1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError`] for a degenerate z-range.
    pub fn rx_regions(&self, z0: Meters, z1: Meters) -> Result<Vec<BoxRegion>, ThermalError> {
        self.kind_regions(SiteKind::Receiver, z0, z1)
    }

    fn kind_regions(
        &self,
        kind: SiteKind,
        z0: Meters,
        z1: Meters,
    ) -> Result<Vec<BoxRegion>, ThermalError> {
        let mut out = Vec::new();
        for row in 0..OniLayout::ROWS {
            for col in 0..OniLayout::COLS {
                if self.layout.site_kind(row, col) == kind {
                    out.push(match kind {
                        SiteKind::Transmitter => self.vcsel_region(row, col, z0, z1)?,
                        SiteKind::Receiver => self.ring_region(row, col, z0, z1)?,
                    });
                }
            }
        }
        Ok(out)
    }

    /// Adds all device blocks of this ONI to `design`.
    ///
    /// Transmitter sites get a VCSEL block in the optical layer (group
    /// `"vcsel"`, power `p_vcsel`), a TSV-bundle block through the bonding
    /// layer, and a CMOS-driver block in the BEOL (group `"driver"`, power
    /// `p_driver`). Receiver sites get a ring+heater block in the optical
    /// layer (group `"heater"`, power `p_heater`).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError`] if any block falls outside the domain.
    #[allow(clippy::too_many_arguments)]
    pub fn add_devices(
        &self,
        design: &mut Design,
        beol_z: (Meters, Meters),
        bonding_z: (Meters, Meters),
        optical_z: (Meters, Meters),
        p_vcsel: Watts,
        p_driver: Watts,
        p_heater: Watts,
    ) -> Result<(), ThermalError> {
        // Effective conductivity of a 5 µm-TSV bundle diluted in the
        // bonding polymer (paper Figure 1-c: "bundle of TSVs").
        let tsv_bundle = Material::new("TSV bundle effective", 60.0);
        for row in 0..OniLayout::ROWS {
            for col in 0..OniLayout::COLS {
                let tag = format!("oni{}[{row},{col}]", self.index);
                match self.layout.site_kind(row, col) {
                    SiteKind::Transmitter => {
                        design.try_add_block(
                            Block::heat_source(
                                format!("vcsel@{tag}"),
                                self.vcsel_region(row, col, optical_z.0, optical_z.1)?,
                                Material::III_V,
                                p_vcsel,
                            )
                            .with_group("vcsel"),
                        )?;
                        design.try_add_block(Block::passive(
                            format!("tsv@{tag}"),
                            self.vcsel_region(row, col, bonding_z.0, bonding_z.1)?,
                            tsv_bundle.clone(),
                        ))?;
                        design.try_add_block(
                            Block::heat_source(
                                format!("driver@{tag}"),
                                self.site_region(row, col, beol_z.0, beol_z.1)?,
                                Material::BEOL,
                                p_driver,
                            )
                            .with_group("driver"),
                        )?;
                    }
                    SiteKind::Receiver => {
                        design.try_add_block(
                            Block::heat_source(
                                format!("ring@{tag}"),
                                self.ring_region(row, col, optical_z.0, optical_z.1)?,
                                Material::SILICON,
                                p_heater,
                            )
                            .with_group("heater"),
                        )?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsel_thermal::Design;

    #[test]
    fn chessboard_alternates() {
        let l = OniLayout::Chessboard;
        assert_eq!(l.site_kind(0, 0), SiteKind::Transmitter);
        assert_eq!(l.site_kind(0, 1), SiteKind::Receiver);
        assert_eq!(l.site_kind(1, 0), SiteKind::Receiver);
        assert_eq!(l.site_kind(1, 1), SiteKind::Transmitter);
        // Each row has exactly 4 transmitters ("4 lasers per waveguide").
        for row in 0..OniLayout::ROWS {
            let tx = (0..OniLayout::COLS)
                .filter(|&c| l.site_kind(row, c) == SiteKind::Transmitter)
                .count();
            assert_eq!(tx, 4);
        }
    }

    #[test]
    fn clustered_separates() {
        let l = OniLayout::Clustered;
        assert!((0..4).all(|c| l.site_kind(0, c) == SiteKind::Transmitter));
        assert!((4..8).all(|c| l.site_kind(0, c) == SiteKind::Receiver));
    }

    #[test]
    fn footprint_dimensions() {
        // 8 x 30 µm = 240 µm wide; 3 x 50 + 30 = 180 µm deep.
        assert!((OniLayout::width().as_micrometers() - 240.0).abs() < 1e-9);
        assert!((OniLayout::depth().as_micrometers() - 180.0).abs() < 1e-9);
    }

    #[test]
    fn device_counts_and_power() {
        let stack = crate::PackageStack::scc();
        let domain = BoxRegion::new(
            [Meters::ZERO; 3],
            [Meters::from_millimeters(2.0), Meters::from_millimeters(2.0), stack.total_thickness()],
        )
        .unwrap();
        let mut d = Design::new(domain, Material::SILICON).unwrap();
        let oni = OniInstance::new(
            0,
            Meters::from_micrometers(500.0),
            Meters::from_micrometers(500.0),
            OniLayout::Chessboard,
        );
        oni.add_devices(
            &mut d,
            stack.beol_z(),
            stack.bonding_z(),
            stack.optical_layer_z(),
            Watts::from_milliwatts(2.0),
            Watts::from_milliwatts(2.0),
            Watts::from_milliwatts(0.6),
        )
        .unwrap();
        // 16 TX x 3 blocks + 16 RX x 1 block = 64 blocks.
        assert_eq!(d.blocks().len(), 64);
        // Power: 16 x 2 mW vcsel + 16 x 2 mW driver + 16 x 0.6 mW heater.
        assert!((d.group_power("vcsel").as_milliwatts() - 32.0).abs() < 1e-9);
        assert!((d.group_power("driver").as_milliwatts() - 32.0).abs() < 1e-9);
        assert!((d.group_power("heater").as_milliwatts() - 9.6).abs() < 1e-9);
    }

    #[test]
    fn tx_rx_regions_are_disjoint_and_complete() {
        let oni = OniInstance::new(1, Meters::ZERO, Meters::ZERO, OniLayout::Chessboard);
        let z = (Meters::ZERO, Meters::from_micrometers(4.0));
        let tx = oni.tx_regions(z.0, z.1).unwrap();
        let rx = oni.rx_regions(z.0, z.1).unwrap();
        assert_eq!(tx.len(), 16);
        assert_eq!(rx.len(), 16);
        // No TX region center is inside an RX region.
        for t in &tx {
            let c = t.center();
            assert!(rx.iter().all(|r| !r.contains(c)));
        }
    }

    #[test]
    fn center_is_inside_region() {
        let oni = OniInstance::new(
            2,
            Meters::from_millimeters(1.0),
            Meters::from_millimeters(2.0),
            OniLayout::Chessboard,
        );
        let region = oni.region(Meters::ZERO, Meters::from_micrometers(4.0)).unwrap();
        let c = oni.center();
        assert!(region.contains([c[0], c[1], Meters::from_micrometers(2.0)]));
    }
}
