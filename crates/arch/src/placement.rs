//! The three ONI-placement scenarios of Figure 11.
//!
//! The case study varies where the 8 ONIs sit on the die, producing ring
//! waveguides of 18 mm, 32.4 mm and 46.8 mm. We realize each scenario as a
//! rectangular serpentine centered on the die with the prescribed
//! perimeter; ONIs are spaced evenly along it.

use vcsel_units::Meters;

use crate::ArchError;

/// One of the paper's placement scenarios (or a custom ring).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementCase {
    /// Figure 11-a: compact central ring, 18 mm.
    Case1,
    /// Figure 11-b: mid-size ring, 32.4 mm.
    Case2,
    /// Figure 11-c: die-spanning ring, 46.8 mm.
    Case3,
    /// A custom rectangular ring with the given perimeter.
    Custom {
        /// Ring perimeter.
        perimeter: Meters,
    },
}

impl PlacementCase {
    /// The ring (waveguide) length of this scenario.
    pub fn ring_length(&self) -> Meters {
        match self {
            PlacementCase::Case1 => Meters::from_millimeters(18.0),
            PlacementCase::Case2 => Meters::from_millimeters(32.4),
            PlacementCase::Case3 => Meters::from_millimeters(46.8),
            PlacementCase::Custom { perimeter } => *perimeter,
        }
    }

    /// All three paper scenarios, in order.
    pub fn paper_cases() -> [PlacementCase; 3] {
        [PlacementCase::Case1, PlacementCase::Case2, PlacementCase::Case3]
    }

    /// Centers of `n` ONIs evenly spaced along the rectangular ring,
    /// centered within a `die_w × die_h` die, together with each ONI's
    /// arc-length position along the ring.
    ///
    /// The rectangle keeps the die's aspect ratio, so larger rings spread
    /// the ONIs further apart — reproducing the growing inter-ONI thermal
    /// gradients of the paper's Figure 12 discussion.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::BadConfig`] if the ring does not fit in the
    /// die or `n < 2`.
    pub fn oni_positions(
        &self,
        n: usize,
        die_w: Meters,
        die_h: Meters,
    ) -> Result<Vec<OniPlacement>, ArchError> {
        if n < 2 {
            return Err(ArchError::BadConfig { reason: format!("need at least 2 ONIs, got {n}") });
        }
        let perimeter = self.ring_length().value();
        let (w, h) = rectangle_for(perimeter, die_w.value() / die_h.value());
        if w >= die_w.value() || h >= die_h.value() {
            return Err(ArchError::BadConfig {
                reason: format!(
                    "ring of perimeter {} does not fit in the {} x {} die",
                    self.ring_length(),
                    die_w,
                    die_h
                ),
            });
        }
        let cx = die_w.value() / 2.0;
        let cy = die_h.value() / 2.0;

        let mut out = Vec::with_capacity(n);
        for k in 0..n {
            let arc = perimeter * k as f64 / n as f64;
            let (x, y) = point_on_rectangle(w, h, arc);
            out.push(OniPlacement {
                center_x: Meters::new(cx - w / 2.0 + x),
                center_y: Meters::new(cy - h / 2.0 + y),
                arc_position: Meters::new(arc),
            });
        }
        Ok(out)
    }
}

/// Where one ONI sits: die coordinates of its center and its arc position
/// along the ring waveguide.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OniPlacement {
    /// Die x-coordinate of the ONI center.
    pub center_x: Meters,
    /// Die y-coordinate of the ONI center.
    pub center_y: Meters,
    /// Arc-length position along the ring.
    pub arc_position: Meters,
}

/// Rectangle of the given perimeter and aspect ratio (w/h).
fn rectangle_for(perimeter: f64, aspect: f64) -> (f64, f64) {
    // w = aspect * h; 2(w + h) = perimeter.
    let h = perimeter / (2.0 * (1.0 + aspect));
    (aspect * h, h)
}

/// Point at arc length `s` along the rectangle boundary (counter-clockwise
/// from the bottom-left corner), in rectangle-local coordinates.
fn point_on_rectangle(w: f64, h: f64, s: f64) -> (f64, f64) {
    let p = 2.0 * (w + h);
    let s = s.rem_euclid(p);
    if s < w {
        (s, 0.0)
    } else if s < w + h {
        (w, s - w)
    } else if s < 2.0 * w + h {
        (w - (s - w - h), h)
    } else {
        (0.0, h - (s - 2.0 * w - h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ring_lengths() {
        assert!((PlacementCase::Case1.ring_length().as_millimeters() - 18.0).abs() < 1e-12);
        assert!((PlacementCase::Case2.ring_length().as_millimeters() - 32.4).abs() < 1e-12);
        assert!((PlacementCase::Case3.ring_length().as_millimeters() - 46.8).abs() < 1e-12);
    }

    #[test]
    fn rectangle_perimeter_round_trip() {
        let (w, h) = rectangle_for(18e-3, 26.4 / 21.6);
        assert!((2.0 * (w + h) - 18e-3).abs() < 1e-12);
        assert!((w / h - 26.4 / 21.6).abs() < 1e-12);
    }

    #[test]
    fn walking_the_rectangle() {
        let (w, h) = (4.0, 2.0);
        assert_eq!(point_on_rectangle(w, h, 0.0), (0.0, 0.0));
        assert_eq!(point_on_rectangle(w, h, 4.0), (4.0, 0.0));
        assert_eq!(point_on_rectangle(w, h, 6.0), (4.0, 2.0));
        assert_eq!(point_on_rectangle(w, h, 10.0), (0.0, 2.0));
        // Full perimeter wraps to the origin.
        assert_eq!(point_on_rectangle(w, h, 12.0), (0.0, 0.0));
    }

    #[test]
    fn onis_stay_on_die_and_spread_with_case() {
        let die_w = Meters::from_millimeters(26.4);
        let die_h = Meters::from_millimeters(21.6);
        let spread = |case: PlacementCase| {
            let ps = case.oni_positions(8, die_w, die_h).unwrap();
            assert_eq!(ps.len(), 8);
            for p in &ps {
                assert!(p.center_x.value() > 0.0 && p.center_x < die_w);
                assert!(p.center_y.value() > 0.0 && p.center_y < die_h);
            }
            // Max pairwise distance as a spread metric.
            let mut max_d: f64 = 0.0;
            for a in &ps {
                for b in &ps {
                    let dx = (a.center_x - b.center_x).value();
                    let dy = (a.center_y - b.center_y).value();
                    max_d = max_d.max((dx * dx + dy * dy).sqrt());
                }
            }
            max_d
        };
        let s1 = spread(PlacementCase::Case1);
        let s2 = spread(PlacementCase::Case2);
        let s3 = spread(PlacementCase::Case3);
        assert!(s1 < s2 && s2 < s3, "spread must grow with ring length: {s1} {s2} {s3}");
    }

    #[test]
    fn arc_positions_are_even() {
        let ps = PlacementCase::Case1
            .oni_positions(6, Meters::from_millimeters(26.4), Meters::from_millimeters(21.6))
            .unwrap();
        for (k, p) in ps.iter().enumerate() {
            let expected = 18.0e-3 * k as f64 / 6.0;
            assert!((p.arc_position.value() - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn oversized_ring_rejected() {
        let err = PlacementCase::Custom { perimeter: Meters::from_millimeters(200.0) }
            .oni_positions(4, Meters::from_millimeters(26.4), Meters::from_millimeters(21.6));
        assert!(err.is_err());
        assert!(PlacementCase::Case1
            .oni_positions(1, Meters::from_millimeters(26.4), Meters::from_millimeters(21.6))
            .is_err());
    }
}
