//! Error type for architecture construction.

use core::fmt;
use vcsel_network::NetworkError;
use vcsel_thermal::ThermalError;

/// Errors produced while building the case-study architecture.
#[derive(Debug)]
#[non_exhaustive]
pub enum ArchError {
    /// A configuration value is invalid.
    BadConfig {
        /// Explanation of what is wrong.
        reason: String,
    },
    /// Geometry construction failed in the thermal layer.
    Thermal(ThermalError),
    /// Topology construction failed in the network layer.
    Network(NetworkError),
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadConfig { reason } => write!(f, "bad configuration: {reason}"),
            Self::Thermal(e) => write!(f, "thermal model: {e}"),
            Self::Network(e) => write!(f, "network model: {e}"),
        }
    }
}

impl std::error::Error for ArchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Thermal(e) => Some(e),
            Self::Network(e) => Some(e),
            Self::BadConfig { .. } => None,
        }
    }
}

impl From<ThermalError> for ArchError {
    fn from(e: ThermalError) -> Self {
        Self::Thermal(e)
    }
}

impl From<NetworkError> for ArchError {
    fn from(e: NetworkError) -> Self {
        Self::Network(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = ArchError::from(ThermalError::NoHeatPath);
        assert!(e.to_string().contains("thermal"));
        assert!(e.source().is_some());
        let e = ArchError::BadConfig { reason: "zero ONIs".into() };
        assert!(e.to_string().contains("zero ONIs"));
        assert!(e.source().is_none());
    }
}
