//! 3D MPSoC architecture models for the paper's case study (Section V-A).
//!
//! The targeted system is Intel's Single-chip Cloud Computer (SCC): a
//! 24-tile, 48-core 45 nm processor dissipating up to 125 W, stacked with an
//! optical layer carrying the ORNoC interconnect. This crate turns that
//! description into a [`vcsel_thermal::Design`]:
//!
//! * [`PackageStack`] — the Figure 7 assembly: substrate, silicon
//!   interposer, logic die + BEOL, bonding layer, optical layer, cap
//!   silicon, epoxy, TIM, copper lid, heat-sink convection,
//! * [`SccFloorplan`] — the 6 × 4 tile grid with per-tile heat sources,
//! * [`Activity`] — uniform / diagonal / random / hotspot power maps
//!   (Figure 3's "MPSoC activity" input),
//! * [`OniLayout`] — the chessboard Optical Network Interface of Figure 1-b
//!   (4 waveguides × alternating transmitter/receiver sites) plus a
//!   clustered variant for the layout ablation,
//! * [`PlacementCase`] — the three ONI placements of Figure 11 (18 mm,
//!   32.4 mm, 46.8 mm rings),
//! * [`SccSystem`] — glue: builds the complete thermal design with power
//!   groups (`"chip"`, `"vcsel"`, `"driver"`, `"heater"`) ready for
//!   superposition sweeps, the matching [`vcsel_network::RingTopology`], and
//!   the mesh policy for each [`Fidelity`] preset.
//!
//! # Example
//!
//! ```no_run
//! use vcsel_arch::{Activity, Fidelity, PlacementCase, SccConfig, SccSystem};
//! use vcsel_units::Watts;
//!
//! let config = SccConfig {
//!     placement: PlacementCase::Case1,
//!     p_vcsel: Watts::from_milliwatts(3.6),
//!     p_heater: Watts::from_milliwatts(1.08),
//!     p_chip: Watts::new(25.0),
//!     activity: Activity::Uniform,
//!     fidelity: Fidelity::Fast,
//!     ..SccConfig::default()
//! };
//! let system = SccSystem::build(&config)?;
//! assert_eq!(system.onis().len(), 8);
//! # Ok::<(), vcsel_arch::ArchError>(())
//! ```

// Lint levels (forbid(unsafe_code), warn(missing_docs), the clippy set)
// come from [workspace.lints] in the root Cargo.toml.

mod activity;
mod error;
mod floorplan;
mod oni;
mod package;
mod placement;
mod system;

pub use activity::Activity;
pub use error::ArchError;
pub use floorplan::SccFloorplan;
pub use oni::{OniInstance, OniLayout, SiteKind};
pub use package::{PackageLayer, PackageStack};
pub use placement::PlacementCase;
pub use system::{Fidelity, OniThermals, SccConfig, SccSystem};
