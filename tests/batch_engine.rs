//! Umbrella regression for the batched multi-RHS solve engine: a
//! 12-point power sweep over a tiny-fidelity SCC system must match the
//! sequential `solve_scaled` loop point for point, spend strictly fewer
//! total SpMV-equivalents (pinned through telemetry solve samples), and
//! isolate a poisoned painting to its own column.

use vcsel_arch::{SccConfig, SccSystem};
use vcsel_numerics::solver::SolveOptions;
use vcsel_telemetry::{TelemetrySink, TraceMode};
use vcsel_thermal::{SolveContext, ThermalError, ThermalMap};
use vcsel_units::Watts;

/// Tightened CG tolerance so both solve paths land within the 1e-10
/// agreement bar; at the default 1e-9 their different warm-start chains
/// disagree at exactly tolerance level.
fn tight() -> SolveOptions {
    SolveOptions { tolerance: 1e-12, max_iterations: 50_000, relaxation: 1.6 }
}

fn tiny_system() -> (SccSystem, vcsel_thermal::MeshSpec) {
    let config = SccConfig { p_vcsel: Watts::from_milliwatts(4.0), ..SccConfig::tiny_test() };
    let system = SccSystem::build(&config).expect("tiny SCC builds");
    let spec = system.mesh_spec().expect("mesh spec");
    (system, spec)
}

/// The 12 sweep points: VCSEL drive scaled across the operating range
/// while the chip background stays put.
fn sweep_paintings() -> Vec<Vec<(&'static str, f64)>> {
    (0..12).map(|i| vec![("vcsel", 0.25 + 0.25 * i as f64)]).collect()
}

fn total_spmv(sink: &TelemetrySink) -> u64 {
    sink.drain().samples.iter().map(|s| s.spmv).sum()
}

#[test]
fn batched_sweep_matches_sequential_loop_with_fewer_spmv() {
    let (system, spec) = tiny_system();
    let paintings = sweep_paintings();

    let seq_sink = TelemetrySink::new(TraceMode::Full);
    let mut seq = SolveContext::new(system.design(), &spec)
        .expect("context")
        .with_options(tight())
        .with_telemetry(seq_sink.clone());
    let sequential: Vec<ThermalMap> =
        paintings.iter().map(|p| seq.solve_scaled(p).expect("sequential point solves")).collect();
    let seq_spmv = total_spmv(&seq_sink);

    let batch_sink = TelemetrySink::new(TraceMode::Full);
    let mut batched = SolveContext::new(system.design(), &spec)
        .expect("context")
        .with_options(tight())
        .with_telemetry(batch_sink.clone());
    let refs: Vec<&[(&str, f64)]> = paintings.iter().map(Vec::as_slice).collect();
    let maps = batched.solve_batch(&refs).expect("batch solves");
    let batch_spmv = total_spmv(&batch_sink);

    assert_eq!(maps.len(), 12);
    for (i, (map, reference)) in maps.iter().zip(&sequential).enumerate() {
        let map = map.as_ref().expect("batched point converges");
        let scale = reference.temperatures().iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (a, b) in map.temperatures().iter().zip(reference.temperatures()) {
            assert!((a - b).abs() / scale < 1e-10, "point {i}: batched {a} vs sequential {b}");
        }
        assert!(
            (map.injected_power().value() - reference.injected_power().value()).abs() < 1e-12,
            "point {i}: injected power drifted"
        );
    }

    // The whole economy of the block engine: one operator sweep serves
    // every active column, so the batch must beat twelve scalar solves.
    assert!(
        batch_spmv < seq_spmv,
        "batch spent {batch_spmv} SpMV-equivalents, sequential loop {seq_spmv}"
    );
}

#[test]
fn poisoned_painting_fails_its_column_and_spares_the_rest() {
    let (system, spec) = tiny_system();
    let mut ctx = SolveContext::new(system.design(), &spec).expect("context");

    let mut paintings = sweep_paintings();
    paintings[5] = vec![("not-a-power-group", 1.0)];
    let refs: Vec<&[(&str, f64)]> = paintings.iter().map(Vec::as_slice).collect();

    let maps = ctx.solve_batch(&refs).expect("batch call itself succeeds");
    assert_eq!(maps.len(), 12);
    for (i, slot) in maps.iter().enumerate() {
        if i == 5 {
            match slot {
                Err(ThermalError::UnknownGroup { group }) => {
                    assert_eq!(group, "not-a-power-group");
                }
                other => panic!("slot 5 should fail with UnknownGroup, got {other:?}"),
            }
        } else {
            assert!(slot.is_ok(), "slot {i} should survive the poisoned neighbour");
        }
    }
}
