//! Property-based tests on cross-crate invariants.

use proptest::prelude::*;
use vcsel_onoc::network::{assign_channels, traffic};
use vcsel_onoc::prelude::*;
use vcsel_onoc::units::WattsPerSquareMeterKelvin;

fn mm(v: f64) -> Meters {
    Meters::from_millimeters(v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Steady state conserves energy for arbitrary block stacks.
    #[test]
    fn energy_balance_for_random_designs(
        n_sources in 1usize..4,
        xs in proptest::collection::vec(0.2f64..0.7, 4),
        ys in proptest::collection::vec(0.2f64..0.7, 4),
        powers in proptest::collection::vec(0.01f64..2.0, 4),
        h in 500.0f64..20_000.0,
        ambient in 10.0f64..60.0,
    ) {
        let domain = BoxRegion::new([Meters::ZERO; 3], [mm(6.0), mm(6.0), mm(1.0)]).unwrap();
        let mut d = Design::new(domain, Material::SILICON).unwrap();
        d.set_boundary(Boundary::top(), BoundaryCondition::Convective {
            h: WattsPerSquareMeterKelvin::new(h),
            ambient: Celsius::new(ambient),
        });
        for i in 0..n_sources {
            let x0 = mm(6.0 * xs[i] * 0.8);
            let y0 = mm(6.0 * ys[i] * 0.8);
            let region = BoxRegion::new(
                [x0, y0, Meters::ZERO],
                [x0 + mm(1.0), y0 + mm(1.0), mm(0.2)],
            ).unwrap();
            d.add_block(Block::heat_source(
                format!("s{i}"), region, Material::COPPER, Watts::new(powers[i]),
            ));
        }
        let map = Simulator::new().solve(&d, &MeshSpec::uniform(mm(0.5))).unwrap();
        prop_assert!(map.energy_balance_defect() < 1e-6,
            "defect {}", map.energy_balance_defect());
        // More power in => nowhere colder than ambient.
        prop_assert!(map.coldest().1.value() >= ambient - 1e-6);
    }

    /// Adding power anywhere never cools any cell (discrete maximum
    /// principle for the conduction operator).
    #[test]
    fn monotonicity_in_power(extra in 0.1f64..3.0) {
        let domain = BoxRegion::new([Meters::ZERO; 3], [mm(4.0), mm(4.0), mm(1.0)]).unwrap();
        let build = |p2: f64| {
            let mut d = Design::new(domain, Material::SILICON).unwrap();
            d.set_boundary(Boundary::top(), BoundaryCondition::Convective {
                h: WattsPerSquareMeterKelvin::new(2_000.0),
                ambient: Celsius::new(25.0),
            });
            let r1 = BoxRegion::new([mm(0.5), mm(0.5), Meters::ZERO], [mm(1.5), mm(1.5), mm(0.2)]).unwrap();
            let r2 = BoxRegion::new([mm(2.5), mm(2.5), Meters::ZERO], [mm(3.5), mm(3.5), mm(0.2)]).unwrap();
            d.add_block(Block::heat_source("base", r1, Material::COPPER, Watts::new(1.0)));
            d.add_block(Block::heat_source("extra", r2, Material::COPPER, Watts::new(p2)));
            d
        };
        let sim = Simulator::new();
        let spec = MeshSpec::uniform(mm(0.5));
        let cold = sim.solve(&build(0.0), &spec).unwrap();
        let hot = sim.solve(&build(extra), &spec).unwrap();
        for (a, b) in cold.temperatures().iter().zip(hot.temperatures()) {
            prop_assert!(b >= &(a - 1e-9), "power increase cooled a cell: {a} -> {b}");
        }
    }

    /// A common temperature shift of every ONI leaves the SNR unchanged
    /// (only *differences* misalign wavelengths).
    #[test]
    fn snr_invariant_under_common_shift(
        base in 35.0f64..65.0,
        shift in -10.0f64..10.0,
        n in 3usize..7,
    ) {
        let topo = RingTopology::evenly_spaced(n, mm(30.0)).unwrap();
        let comms = assign_channels(&topo, &traffic::all_to_all(n)).unwrap();
        let analyzer = SnrAnalyzer::paper_default(WavelengthGrid::paper_default());
        let powers = vec![Watts::from_milliwatts(0.3); comms.len()];
        // A fixed non-uniform profile plus the common shift.
        let temps_a: Vec<Celsius> =
            (0..n).map(|i| Celsius::new(base + 0.9 * i as f64)).collect();
        let temps_b: Vec<Celsius> =
            (0..n).map(|i| Celsius::new(base + shift + 0.9 * i as f64)).collect();
        let ra = analyzer.analyze(&topo, &comms, &temps_a, &powers).unwrap();
        let rb = analyzer.analyze(&topo, &comms, &temps_b, &powers).unwrap();
        for (a, b) in ra.results().iter().zip(rb.results()) {
            if a.snr_db.is_finite() {
                prop_assert!((a.snr_db - b.snr_db).abs() < 1e-6,
                    "common shift changed SNR: {} vs {}", a.snr_db, b.snr_db);
            }
        }
    }

    /// Total received power never exceeds total injected power
    /// (passive network).
    #[test]
    fn network_is_passive(
        n in 3usize..7,
        spread in 0.0f64..8.0,
        p_mw in 0.05f64..1.0,
    ) {
        let topo = RingTopology::evenly_spaced(n, mm(40.0)).unwrap();
        let comms = assign_channels(&topo, &traffic::all_to_all(n)).unwrap();
        let analyzer = SnrAnalyzer::paper_default(WavelengthGrid::paper_default());
        let temps: Vec<Celsius> =
            (0..n).map(|i| Celsius::new(45.0 + spread * i as f64 / n as f64)).collect();
        let powers = vec![Watts::from_milliwatts(p_mw); comms.len()];
        let report = analyzer.analyze(&topo, &comms, &temps, &powers).unwrap();
        let received: f64 = report.results().iter()
            .map(|r| r.signal.value() + r.crosstalk.value()).sum();
        let injected = p_mw * 1e-3 * comms.len() as f64;
        prop_assert!(received <= injected * (1.0 + 1e-9),
            "received {received} > injected {injected}");
    }

    /// VCSEL energy conservation holds across the whole operating range.
    #[test]
    fn vcsel_conserves_energy(i_ma in 0.0f64..15.0, t in 0.0f64..85.0) {
        let v = Vcsel::paper_default();
        let op = v.operating_point(
            Amperes::from_milliamperes(i_ma), Celsius::new(t)).unwrap();
        let total = op.optical_power.value() + op.dissipated_power.value();
        prop_assert!((total - op.electrical_power.value()).abs() < 1e-12);
        prop_assert!(op.efficiency >= 0.0 && op.efficiency < 1.0);
    }

    /// Microring drop + through always conserves power, and drop peaks at
    /// zero detuning.
    #[test]
    fn ring_conservation_and_peak(delta in -10.0f64..10.0) {
        let ring = MicroringResonator::paper_default(Nanometers::new(1550.0));
        let d = ring.drop_fraction(Nanometers::new(delta));
        let t = ring.through_fraction(Nanometers::new(delta));
        prop_assert!((d + t - 1.0).abs() < 1e-12);
        prop_assert!(d <= ring.drop_fraction(Nanometers::ZERO) + 1e-15);
    }

    /// The block engine is k independent CG recurrences in lockstep:
    /// for any SPD stencil and any bundle of right-hand sides, one block
    /// solve must land on the same answers as k scalar solves.
    #[test]
    fn block_solve_agrees_with_scalar_solves(
        nx in 3usize..8,
        ny in 3usize..8,
        k in 1usize..5,
        seed in proptest::collection::vec(-2.0f64..2.0, 40),
        rhs_seed in proptest::collection::vec(-5.0f64..5.0, 64),
    ) {
        use vcsel_onoc::numerics::solver::{preconditioned_cg, CgWorkspace, SolveOptions};
        use vcsel_onoc::numerics::{
            block_preconditioned_cg, BlockCgWorkspace, BlockVector, PreconditionerKind,
            TripletBuilder,
        };

        // 5-point SPD stencil with random positive conductances.
        let n = nx * ny;
        let mut b = TripletBuilder::with_capacity(n, n, 5 * n);
        let draw = |idx: usize| 0.05 + seed[idx % seed.len()].abs();
        let mut diag = vec![0.0; n];
        for j in 0..ny {
            for i in 0..nx {
                let c = j * nx + i;
                if i + 1 < nx {
                    let g = draw(c * 3 + 1);
                    b.add(c, c + 1, -g);
                    b.add(c + 1, c, -g);
                    diag[c] += g;
                    diag[c + 1] += g;
                }
                if j + 1 < ny {
                    let g = draw(c * 5 + 2);
                    b.add(c, c + nx, -g);
                    b.add(c + nx, c, -g);
                    diag[c] += g;
                    diag[c + nx] += g;
                }
            }
        }
        for (c, d) in diag.iter().enumerate() {
            b.add(c, c, d + 0.01 + 0.1 * seed[(c * 7 + 3) % seed.len()].abs());
        }
        let a = b.build();

        let columns: Vec<Vec<f64>> = (0..k)
            .map(|j| (0..n).map(|i| rhs_seed[(j * n + i) % rhs_seed.len()]).collect())
            .collect();
        let opts = SolveOptions { tolerance: 1e-12, max_iterations: 50_000, relaxation: 1.5 };
        let mut pc = PreconditionerKind::Jacobi.build(&a).unwrap();

        let mut scalars = Vec::with_capacity(k);
        let mut scalar_ws = CgWorkspace::default();
        for rhs in &columns {
            let mut x = vec![0.0; n];
            preconditioned_cg(&a, rhs, &mut x, &mut pc, &opts, &mut scalar_ws).unwrap();
            scalars.push(x);
        }

        let refs: Vec<&[f64]> = columns.iter().map(Vec::as_slice).collect();
        let bvec = BlockVector::from_columns(&refs).unwrap();
        let mut x = BlockVector::zeros(n, k);
        let mut ws = BlockCgWorkspace::new();
        block_preconditioned_cg(&a, &bvec, &mut x, &mut pc, &opts, &mut ws).unwrap();

        for (c, scalar) in scalars.iter().enumerate() {
            let scale = scalar.iter().fold(1.0f64, |m, v: &f64| m.max(v.abs()));
            for (p, q) in x.column(c).iter().zip(scalar) {
                prop_assert!(
                    (p - q).abs() / scale <= 1e-10,
                    "column {}: block {} vs scalar {}", c, p, q
                );
            }
        }
    }
}
