//! Integration-level validation of the FVM thermal solver against analytic
//! solutions and conservation laws — our stand-in for the paper's
//! "IcTherm was validated against COMSOL (max error < 1 %)".

use vcsel_onoc::prelude::*;
use vcsel_onoc::thermal::ThermalError;
use vcsel_onoc::units::WattsPerSquareMeterKelvin;

fn mm(v: f64) -> Meters {
    Meters::from_millimeters(v)
}

/// Composite two-layer wall with uniform flux: temperatures at each
/// interface must match the series-resistance solution within 1 %.
#[test]
fn composite_wall_matches_series_resistance() {
    let a = 4.0e-3;
    let t_si = 0.5e-3;
    let t_ox = 0.1e-3;
    let h = 5_000.0;
    let ambient = 30.0;
    let power = 2.0;

    let domain = BoxRegion::new(
        [Meters::ZERO; 3],
        [Meters::new(a), Meters::new(a), Meters::new(t_si + t_ox)],
    )
    .unwrap();
    let mut d = Design::new(domain, Material::SILICON).unwrap();
    d.set_boundary(
        Boundary::top(),
        BoundaryCondition::Convective {
            h: WattsPerSquareMeterKelvin::new(h),
            ambient: Celsius::new(ambient),
        },
    );
    // Bottom: silicon; top: oxide.
    let oxide = BoxRegion::new(
        [Meters::ZERO, Meters::ZERO, Meters::new(t_si)],
        [Meters::new(a), Meters::new(a), Meters::new(t_si + t_ox)],
    )
    .unwrap();
    d.add_block(Block::passive("oxide", oxide, Material::SILICON_DIOXIDE));
    // Thin uniform heater at the very bottom.
    let heater = BoxRegion::new(
        [Meters::ZERO; 3],
        [Meters::new(a), Meters::new(a), Meters::new(t_si / 25.0)],
    )
    .unwrap();
    d.add_block(Block::heat_source("heater", heater, Material::SILICON, Watts::new(power)));

    let spec = MeshSpec::per_axis([mm(2.0), mm(2.0), Meters::new(t_ox / 5.0)]);
    let map = Simulator::new().solve(&d, &spec).unwrap();

    let area = a * a;
    let flux = power / area;
    let k_si = Material::SILICON.conductivity().value();
    let k_ox = Material::SILICON_DIOXIDE.conductivity().value();

    // Analytic 1-D solution (heater treated as a plane source at z = 0).
    // `temperature_at` reports the containing CELL's value, i.e. the field
    // at the cell center, so each expectation is evaluated at the probed
    // cell's center rather than at the material interface: for the top
    // probe the half-cell (t_ox/10) offset through low-k oxide is ~0.9 °C,
    // far beyond the 1 % tolerance if compared against the surface value.
    let t_top = ambient + flux / h + flux * (t_ox / 10.0) / k_ox;
    let t_mid = ambient + flux / h + flux * t_ox / k_ox;
    let t_bot = t_mid + flux * (t_si - t_si / 50.0) / k_si;

    let center = mm(2.0);
    let got_top =
        map.temperature_at([center, center, Meters::new(t_si + t_ox * 0.999)]).unwrap().value();
    let got_mid = map.temperature_at([center, center, Meters::new(t_si * 0.999)]).unwrap().value();
    let got_bot = map.temperature_at([center, center, Meters::new(t_si / 50.0)]).unwrap().value();

    let tol = |expected: f64| (expected - ambient).abs() * 0.01 + 0.05;
    assert!((got_top - t_top).abs() < tol(t_top), "top {got_top} vs {t_top}");
    assert!((got_mid - t_mid).abs() < tol(t_mid), "mid {got_mid} vs {t_mid}");
    assert!((got_bot - t_bot).abs() < tol(t_bot), "bottom {got_bot} vs {t_bot}");
}

/// Uniform volumetric heating of a slab with one isothermal face:
/// the analytic profile is a parabola T(z) = T0 + q/(2k)·(L² − z²)
/// (z measured from the adiabatic face).
#[test]
fn volumetric_heating_parabola() {
    let a = 2.0e-3;
    let l = 1.0e-3;
    let power = 0.8;
    let domain =
        BoxRegion::new([Meters::ZERO; 3], [Meters::new(a), Meters::new(a), Meters::new(l)])
            .unwrap();
    let mut d = Design::new(domain, Material::SILICON).unwrap();
    d.set_boundary(
        Boundary::top(),
        BoundaryCondition::Isothermal { temperature: Celsius::new(20.0) },
    );
    let whole = BoxRegion::new([Meters::ZERO; 3], [Meters::new(a), Meters::new(a), Meters::new(l)])
        .unwrap();
    d.add_block(Block::heat_source("bulk", whole, Material::SILICON, Watts::new(power)));

    let spec = MeshSpec::per_axis([mm(1.0), mm(1.0), Meters::new(l / 40.0)]);
    let map = Simulator::new().solve(&d, &spec).unwrap();

    let q = power / (a * a * l); // W/m³
    let k = Material::SILICON.conductivity().value();
    let center = mm(1.0);
    // Probe at cell centers: `temperature_at` reports the containing
    // cell's value, and every l·frac below is tick-aligned for the l/40
    // grid, which would make the containing cell ambiguous (and near the
    // isothermal face the half-cell offset exceeds the 5 % tolerance).
    let dz = l / 40.0;
    for frac in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let z = l * frac + dz / 2.0;
        // With the adiabatic face at z = 0 (T'(0) = 0) and the isothermal
        // face at z = l (T(l) = 20), integrating T'' = -q/k gives
        // T(z) = 20 + q/(2k)·(l² − z²) directly in our coordinate.
        let expected = 20.0 + q / (2.0 * k) * (l * l - z * z);
        let got = map.temperature_at([center, center, Meters::new(z)]).unwrap().value();
        let rise = expected - 20.0;
        assert!(
            (got - expected).abs() < 0.05 * rise.max(0.01),
            "at z = {frac} L: got {got}, expected {expected}"
        );
    }
}

/// Energy balance on the full SCC case-study geometry.
#[test]
fn scc_system_energy_balance() {
    let config = SccConfig {
        p_vcsel: Watts::from_milliwatts(3.0),
        p_heater: Watts::from_milliwatts(1.0),
        ..SccConfig::tiny_test()
    };
    let system = SccSystem::build(&config).unwrap();
    let spec = system.mesh_spec().unwrap();
    let map = Simulator::new().solve(system.design(), &spec).unwrap();
    assert!(map.energy_balance_defect() < 1e-6, "defect {}", map.energy_balance_defect());
    // Total injected = chip + 32 x (vcsel + driver) + 32 x heater... for the
    // tiny 2-ONI system: 2 W + 2*16*(3+3) mW + 2*16*1 mW.
    let expected = 2.0 + 32.0 * 6.0e-3 + 32.0 * 1.0e-3;
    assert!((map.injected_power().value() - expected).abs() < 1e-9);
}

/// The mesh refuses to grow without bound.
#[test]
fn mesh_limit_guards_against_explosion() {
    let domain = BoxRegion::new([Meters::ZERO; 3], [mm(50.0), mm(50.0), mm(5.0)]).unwrap();
    let d = Design::new(domain, Material::SILICON).unwrap();
    let spec = MeshSpec::uniform(Meters::from_micrometers(5.0));
    match vcsel_onoc::thermal::Mesh::build(&d, &spec) {
        Err(ThermalError::MeshTooLarge { cells, limit }) => {
            assert!(cells > limit);
        }
        other => panic!("expected MeshTooLarge, got {:?}", other.map(|m| m.cell_count())),
    }
}

/// Superposition on the real case-study geometry: composing at new scales
/// matches a direct re-solve.
#[test]
fn scc_superposition_equals_direct() {
    let config = SccConfig::tiny_test();
    let flow = DesignFlow::paper();
    let study = ThermalStudy::new(config.clone(), flow.simulator()).unwrap();
    let outcome = study
        .evaluate(Watts::from_milliwatts(2.5), Watts::from_milliwatts(0.5), Watts::new(3.0))
        .unwrap();

    let direct_config = SccConfig {
        p_vcsel: Watts::from_milliwatts(2.5),
        p_driver: Some(Watts::from_milliwatts(2.5)),
        p_heater: Watts::from_milliwatts(0.5),
        p_chip: Watts::new(3.0),
        ..config
    };
    let system = SccSystem::build(&direct_config).unwrap();
    let spec = system.mesh_spec().unwrap();
    let map = Simulator::new().solve(system.design(), &spec).unwrap();
    let direct = system.oni_thermals(&map).unwrap();

    for (a, b) in outcome.oni.iter().zip(&direct) {
        assert!((a.average.value() - b.average.value()).abs() < 1e-4);
        assert!((a.gradient.value() - b.gradient.value()).abs() < 1e-4);
    }
}

/// Grid-refinement convergence: halving the cell size must shrink the
/// error against the analytic slab solution (first-order or better at the
/// probe point).
#[test]
fn mesh_refinement_converges() {
    let a = 2.0e-3;
    let l = 1.0e-3;
    let power = 0.5;
    let h = 3_000.0;
    let ambient = 25.0;
    let build = || {
        let domain =
            BoxRegion::new([Meters::ZERO; 3], [Meters::new(a), Meters::new(a), Meters::new(l)])
                .unwrap();
        let mut d = Design::new(domain, Material::SILICON).unwrap();
        d.set_boundary(
            Boundary::top(),
            BoundaryCondition::Convective {
                h: WattsPerSquareMeterKelvin::new(h),
                ambient: Celsius::new(ambient),
            },
        );
        let whole =
            BoxRegion::new([Meters::ZERO; 3], [Meters::new(a), Meters::new(a), Meters::new(l)])
                .unwrap();
        d.add_block(Block::heat_source("bulk", whole, Material::SILICON, Watts::new(power)));
        d
    };
    // Analytic: uniform volumetric heating, adiabatic bottom, convective
    // top: T(0) = T_amb + q''/h + q·l²/(2k) with q'' = total flux.
    let q = power / (a * a * l);
    let flux = power / (a * a);
    let k = Material::SILICON.conductivity().value();
    let exact_bottom = ambient + flux / h + q * l * l / (2.0 * k);

    let error_at = |nz: f64| {
        let spec = MeshSpec::per_axis([mm(1.0), mm(1.0), Meters::new(l / nz)]);
        let map = Simulator::new().solve(&build(), &spec).unwrap();
        let got =
            map.temperature_at([mm(1.0), mm(1.0), Meters::new(l / (nz * 2.0))]).unwrap().value();
        // Compare against the analytic value at the first cell center.
        let z_center = l / (nz * 2.0);
        let exact = exact_bottom - q * z_center * z_center / (2.0 * k);
        (got - exact).abs()
    };
    let coarse = error_at(8.0);
    let fine = error_at(32.0);
    assert!(
        fine < coarse * 0.6 + 1e-9,
        "refinement must reduce error: coarse {coarse}, fine {fine}"
    );
    assert!(fine < 0.05, "fine-grid error {fine} too large");
}

/// Transient integration lands on the steady solution for the same
/// cross-crate system (SCC reduced geometry).
#[test]
fn transient_reaches_steady_on_scc() {
    use vcsel_onoc::thermal::TransientSimulator;

    let config = SccConfig { p_vcsel: Watts::from_milliwatts(2.0), ..SccConfig::tiny_test() };
    let system = SccSystem::build(&config).unwrap();
    let spec = system.mesh_spec().unwrap();
    let steady = Simulator::new().solve(system.design(), &spec).unwrap();

    let optical = system.stack().optical_layer_z();
    let oni_center = system.onis()[0].center();
    let probe = [oni_center[0], oni_center[1], optical.0 + Meters::from_micrometers(2.0)];

    // 150 ms steps for 12 s of simulated time: the package time constant
    // is ~1.5 s (measured: 4 s of simulation still leaves a 6.5 % residual,
    // outside the 5 % tolerance below). Implicit Euler's fixed point is the
    // steady solution regardless of step size, so a larger step buys
    // settling time without extra solves.
    let trace = TransientSimulator::new(Celsius::new(40.0))
        .simulate(system.design(), &spec, 150e-3, 80, &[probe])
        .unwrap();
    let t_steady = steady.temperature_at(probe).unwrap().value();
    let t_final = trace.final_probe(0).value();
    assert!(
        (t_final - t_steady).abs() < 0.05 * (t_steady - 40.0).max(0.1),
        "transient {t_final} vs steady {t_steady}"
    );
}
