//! Solve-engine regressions on the real case-study FVM system.
//!
//! The tiny-fidelity SCC mesh mixes 60 µm cells over the ONIs with 3 mm
//! cells over the package — exactly the high-aspect-ratio conditioning the
//! IC(0) preconditioner exists for. These tests pin the engine's two core
//! claims on that system: preconditioning strength (IC(0)-CG needs at most
//! half the iterations of Jacobi-CG) and answer invariance (every
//! preconditioner and the warm-start path agree with the one-shot solver).

use vcsel_arch::{SccConfig, SccSystem};
use vcsel_thermal::{PreconditionerKind, Simulator, SolveContext, TransientStepper};
use vcsel_units::{Celsius, Watts};

fn tiny_system() -> (SccSystem, vcsel_thermal::MeshSpec) {
    let config = SccConfig { p_vcsel: Watts::from_milliwatts(4.0), ..SccConfig::tiny_test() };
    let system = SccSystem::build(&config).expect("tiny SCC builds");
    let spec = system.mesh_spec().expect("mesh spec");
    (system, spec)
}

#[test]
fn ic0_needs_at_most_half_the_jacobi_iterations_on_the_scc_mesh() {
    let (system, spec) = tiny_system();
    let mut jacobi = SolveContext::new(system.design(), &spec)
        .expect("context")
        .with_preconditioner(PreconditionerKind::Jacobi)
        .expect("jacobi");
    let mut ic0 = SolveContext::new(system.design(), &spec).expect("context");
    assert_eq!(ic0.preconditioner_name(), "ic0", "IC(0) must be the engine default");

    let map_j = jacobi.solve().expect("jacobi solves");
    let map_i = ic0.solve().expect("ic0 solves");

    let (iters_j, iters_i) = (jacobi.last_iterations(), ic0.last_iterations());
    assert!(iters_j > 0 && iters_i > 0, "both must actually iterate");
    assert!(
        2 * iters_i <= iters_j,
        "IC(0)-CG took {iters_i} iterations vs Jacobi-CG {iters_j} on {} unknowns — \
         expected at most half",
        ic0.unknowns()
    );
    // Same field either way.
    let (hot_j, hot_i) = (map_j.hottest().1.value(), map_i.hottest().1.value());
    assert!((hot_j - hot_i).abs() < 1e-6, "hottest cell: {hot_j} vs {hot_i}");
}

#[test]
fn cached_engine_matches_the_one_shot_simulator_on_the_scc_system() {
    let (system, spec) = tiny_system();
    let direct = Simulator::new().solve(system.design(), &spec).expect("one-shot solve");
    let mut ctx = SolveContext::new(system.design(), &spec).expect("context");
    let first = ctx.solve().expect("cold engine solve");
    let second = ctx.solve().expect("warm engine solve");
    assert_eq!(ctx.last_iterations(), 0, "identical warm re-solve must be free");
    for ((a, b), c) in
        direct.temperatures().iter().zip(first.temperatures()).zip(second.temperatures())
    {
        assert!((a - b).abs() < 1e-6, "one-shot {a} vs engine {b}");
        assert!((b - c).abs() < 1e-9, "warm re-solve drifted: {b} vs {c}");
    }
}

#[test]
fn threaded_and_serial_transient_steppers_agree_on_the_scc_mesh() {
    // The 200-step transient of `BENCH_solvers.json` runs two IC(0)
    // triangular solves inside every CG iteration; the level-scheduled
    // (wavefront) parallel apply must not move the trajectory. Pinning the
    // worker count forces the threaded path even on a single-core machine,
    // so this pins serial-vs-parallel agreement on the real case-study
    // system, not just on synthetic stencils.
    let (system, spec) = tiny_system();
    let design = system.design();
    let groups: Vec<String> = design.group_names().iter().map(|g| g.to_string()).collect();
    let scales: Vec<(&str, f64)> = groups.iter().map(|g| (g.as_str(), 1.0)).collect();

    let mut serial = TransientStepper::new(design, &spec, Celsius::new(40.0), 1e-2)
        .expect("stepper builds")
        .with_parallel_apply(false);
    let mut wavefront = TransientStepper::new(design, &spec, Celsius::new(40.0), 1e-2)
        .expect("stepper builds")
        .with_apply_threads(4);
    for _ in 0..10 {
        serial.step(&scales).expect("serial step");
        wavefront.step(&scales).expect("wavefront step");
    }
    let (hot_s, hot_w) =
        (serial.snapshot().hottest().1.value(), wavefront.snapshot().hottest().1.value());
    assert!((hot_s - hot_w).abs() < 1e-6, "serial {hot_s} vs level-scheduled {hot_w}");
    assert_eq!(
        serial.total_iterations(),
        wavefront.total_iterations(),
        "identical preconditioner arithmetic must give identical CG trajectories"
    );
}

#[test]
fn ssor_agrees_with_ic0_on_the_scc_system() {
    let (system, spec) = tiny_system();
    let mut ssor = SolveContext::new(system.design(), &spec)
        .expect("context")
        .with_preconditioner(PreconditionerKind::Ssor { omega: 1.2 })
        .expect("ssor");
    let mut ic0 = SolveContext::new(system.design(), &spec).expect("context");
    let map_s = ssor.solve().expect("ssor solves");
    let map_i = ic0.solve().expect("ic0 solves");
    for (a, b) in map_s.temperatures().iter().zip(map_i.temperatures()) {
        assert!((a - b).abs() < 1e-6, "SSOR {a} vs IC(0) {b}");
    }
    assert!(
        ssor.last_iterations() < 2 * ic0.last_iterations().max(1) * 10,
        "sanity: SSOR iteration count {} not runaway vs IC(0) {}",
        ssor.last_iterations(),
        ic0.last_iterations()
    );
}
