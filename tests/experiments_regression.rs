//! Regression checks on the experiment drivers (reduced-fidelity versions
//! of the E1–E10 regenerations; the full-fidelity numbers live in
//! EXPERIMENTS.md and the report binaries).

use std::sync::OnceLock;

use vcsel_onoc::core::experiments::{baseline_comparison, figure10, figure8, figure9a, figure9b};
use vcsel_onoc::core::ThermalStudy;
use vcsel_onoc::prelude::*;

fn tiny_study() -> &'static ThermalStudy {
    static STUDY: OnceLock<ThermalStudy> = OnceLock::new();
    STUDY.get_or_init(|| {
        ThermalStudy::new(SccConfig::tiny_test(), &Simulator::new()).expect("study builds")
    })
}

#[test]
fn e1_e2_vcsel_curves_hit_paper_anchors() {
    let fig = figure8(&Vcsel::paper_default()).unwrap();
    // η(40 °C) peaks near 15 %, η(60 °C) near 4 % (Figure 8-b).
    let peak = |t_idx: usize| fig.efficiency[t_idx].iter().cloned().fold(0.0f64, f64::max);
    let t40 = fig.temperatures_c.iter().position(|&t| t == 40.0).unwrap();
    let t60 = fig.temperatures_c.iter().position(|&t| t == 60.0).unwrap();
    assert!((peak(t40) - 0.15).abs() < 0.02, "η(40) = {}", peak(t40));
    assert!((peak(t60) - 0.04).abs() < 0.015, "η(60) = {}", peak(t60));
    // Figure 8-c: the 20 °C curve reaches ~3-4 mW of output at 20 mW
    // dissipated.
    let curve20 = &fig.output_vs_dissipated[1];
    let op_at_20mw = curve20
        .iter()
        .min_by(|a, b| (a.0 - 20.0).abs().partial_cmp(&(b.0 - 20.0).abs()).unwrap())
        .unwrap()
        .1;
    assert!((2.5..=4.5).contains(&op_at_20mw), "OP at 20 mW = {op_at_20mw}");
}

#[test]
fn e3_average_temperature_slopes() {
    // Figure 9-a: average temperature rises with both chip power and
    // P_VCSEL, and P_VCSEL dominates per-milliwatt.
    let f = figure9a(tiny_study(), &[0.0, 2.0, 4.0, 6.0], &[1.0, 2.0, 3.0]).unwrap();
    assert!(f.chip_power_slope().unwrap() > 0.0);
    // Per *watt*, local VCSEL power heats the ONI orders of magnitude more
    // than chip power spread over the whole die (paper: 11 °C / 6 mW vs
    // 3.3 °C / 6.25 W, a ~2000x ratio; the reduced die shrinks the chip
    // spreading area, so only demand two orders of magnitude here).
    let vcsel_per_watt = f.vcsel_power_slope().unwrap() * 1000.0;
    let chip_per_watt = f.chip_power_slope().unwrap();
    assert!(
        vcsel_per_watt > 100.0 * chip_per_watt,
        "VCSEL heating must dominate per watt: {vcsel_per_watt} vs {chip_per_watt}"
    );
}

#[test]
fn e4_heater_minimum_is_interior() {
    let f =
        figure9b(tiny_study(), &[2.0, 6.0], &[0.0, 0.3, 0.6, 0.9, 1.2, 1.8, 2.4], Watts::new(2.0))
            .unwrap();
    for (row, ratio) in f.gradient_c.iter().zip(&f.optimal_ratio) {
        let min = row.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min < row[0], "heater must improve on no-heater: {row:?}");
        assert!(min < *row.last().unwrap(), "over-heating must hurt: {row:?}");
        assert!((0.1..=0.7).contains(ratio), "optimal ratio {ratio}");
    }
}

#[test]
fn e5_heater_tradeoff() {
    let f = figure10(tiny_study(), &[1.0, 3.0, 6.0], 0.3, Watts::new(2.0)).unwrap();
    for i in 0..3 {
        assert!(f.gradient_with_c[i] < f.gradient_without_c[i]);
        assert!(f.average_with_c[i] > f.average_without_c[i]);
    }
    // The benefit grows with P_VCSEL (paper: "significant improvement ...
    // for higher P_VCSEL values").
    let gain = |i: usize| f.gradient_without_c[i] - f.gradient_with_c[i];
    assert!(gain(2) > gain(0));
}

#[test]
fn e9_baseline_losses() {
    let b = baseline_comparison(16).unwrap();
    assert!((b.worst_case_reduction - 0.425).abs() < 0.08);
    assert!((b.average_reduction - 0.38).abs() < 0.08);
    // ORNoC must be the cheapest topology on both metrics.
    let ornoc = &b.losses_db[0];
    assert_eq!(ornoc.0, "ORNoC");
    for other in &b.losses_db[1..] {
        assert!(ornoc.1 < other.1, "{} beats ORNoC on worst case", other.0);
        assert!(ornoc.2 < other.2, "{} beats ORNoC on average", other.0);
    }
}

#[test]
fn table1_parameters_are_wired_through() {
    let t = TechnologyParams::paper();
    // The analyzer and device prototypes must agree with Table 1.
    let ring = MicroringResonator::paper_default(t.center_wavelength);
    assert_eq!(ring.bandwidth_3db(), t.mr_bandwidth_3db);
    let pd = Photodetector::paper_default();
    assert_eq!(pd.sensitivity().value(), t.photodetector_sensitivity.value());
    let v = Vcsel::paper_default();
    // VCSEL drift equals the Table 1 thermal sensitivity.
    let w1 = v.wavelength(Celsius::new(40.0));
    let w2 = v.wavelength(Celsius::new(41.0));
    assert!(((w2 - w1).value() - t.thermal_sensitivity_nm_per_c).abs() < 1e-12);
}
