//! Cross-crate integration: the run-time management policies of
//! `vcsel-control` running on an influence model calibrated against the
//! *real* FVM thermal simulator (not the synthetic geometry kernel).
//!
//! This closes the loop the crate-level unit tests leave open: the linear
//! [`InfluenceModel`] the policies plan on is exact for the FVM because
//! steady-state conduction is linear — so a model calibrated with one
//! solve per tile must *predict* full FVM solves to solver tolerance, and
//! policy improvements measured on the model must be real improvements on
//! the simulator.

use vcsel_control::{
    allocate_jobs, migrate_workload, AllocationPolicy, InfluenceModel, Job, MigrationConfig,
};
use vcsel_thermal::{
    Block, Boundary, BoundaryCondition, BoxRegion, Design, Material, MeshSpec, ResponseBasis,
    Simulator,
};
use vcsel_units::{Celsius, Meters, Watts, WattsPerSquareMeterKelvin};

fn mm(v: f64) -> Meters {
    Meters::from_millimeters(v)
}

/// A 16 x 4 x 1 mm silicon strip with 4 tile heat sources and two ONI
/// observation windows at the ends, each tile in its own power group.
struct Testbed {
    basis: ResponseBasis,
    onis: [BoxRegion; 2],
}

impl Testbed {
    fn build() -> Self {
        let domain = BoxRegion::new([Meters::ZERO; 3], [mm(16.0), mm(4.0), mm(1.0)]).unwrap();
        let mut design = Design::new(domain, Material::SILICON).unwrap();
        design.set_boundary(
            Boundary::top(),
            BoundaryCondition::Convective {
                h: WattsPerSquareMeterKelvin::new(3_000.0),
                ambient: Celsius::new(45.0),
            },
        );
        for t in 0..4usize {
            let x0 = 0.5 + 4.0 * t as f64;
            let region =
                BoxRegion::new([mm(x0), mm(0.5), Meters::ZERO], [mm(x0 + 3.0), mm(3.5), mm(0.2)])
                    .unwrap();
            design.add_block(
                Block::heat_source(format!("tile{t}"), region, Material::SILICON, Watts::new(1.0))
                    .with_group(format!("tile{t}")),
            );
        }
        let spec = MeshSpec::uniform(mm(0.5));
        let basis = ResponseBasis::build(&Simulator::new(), &design, &spec).unwrap();
        let onis = [
            BoxRegion::new([mm(0.0), mm(1.0), mm(0.5)], [mm(2.0), mm(3.0), mm(1.0)]).unwrap(),
            BoxRegion::new([mm(14.0), mm(1.0), mm(0.5)], [mm(16.0), mm(3.0), mm(1.0)]).unwrap(),
        ];
        Self { basis, onis }
    }

    /// ONI temperatures under per-tile powers, via one superposition
    /// composition (identical to a direct FVM solve by linearity).
    fn oni_temps(
        &self,
        tile_powers: &[Watts],
    ) -> Result<Vec<Celsius>, vcsel_thermal::ThermalError> {
        let scales: Vec<(String, f64)> =
            tile_powers.iter().enumerate().map(|(t, p)| (format!("tile{t}"), p.value())).collect();
        let scale_refs: Vec<(&str, f64)> =
            scales.iter().map(|(name, s)| (name.as_str(), *s)).collect();
        let map = self.basis.compose(&scale_refs)?;
        Ok(self.onis.iter().map(|r| map.average_in(r).expect("ONI meshed")).collect())
    }
}

#[test]
fn influence_model_predicts_the_fvm() {
    let bed = Testbed::build();
    let model = InfluenceModel::calibrate(4, Watts::new(1.0), |p: &[Watts]| {
        bed.oni_temps(p)
            .map_err(|e| vcsel_control::ControlError::BadParameter { reason: e.to_string() })
    })
    .unwrap();

    // An arbitrary operating point never used during calibration.
    let powers = vec![Watts::new(2.5), Watts::new(0.3), Watts::new(1.7), Watts::new(4.1)];
    let predicted = model.temperatures(&powers).unwrap();
    let actual = bed.oni_temps(&powers).unwrap();
    for (p, a) in predicted.iter().zip(&actual) {
        assert!(
            (p.value() - a.value()).abs() < 1e-5,
            "linearity must make the model exact: predicted {p}, FVM {a}"
        );
    }
}

#[test]
fn migration_improvement_is_real_on_the_fvm() {
    let bed = Testbed::build();
    let model = InfluenceModel::calibrate(4, Watts::new(1.0), |p: &[Watts]| {
        bed.oni_temps(p)
            .map_err(|e| vcsel_control::ControlError::BadParameter { reason: e.to_string() })
    })
    .unwrap();

    // All power piled next to ONI 0.
    let skew = vec![Watts::new(4.0), Watts::new(4.0), Watts::ZERO, Watts::ZERO];
    let result = migrate_workload(
        &model,
        &skew,
        &MigrationConfig { tile_cap: Watts::new(5.0), ..MigrationConfig::default() },
    )
    .unwrap();

    // Verify on the simulator, not the model.
    let spread = |temps: &[Celsius]| {
        let hi = temps.iter().map(|t| t.value()).fold(f64::NEG_INFINITY, f64::max);
        let lo = temps.iter().map(|t| t.value()).fold(f64::INFINITY, f64::min);
        hi - lo
    };
    let before = spread(&bed.oni_temps(&skew).unwrap());
    let after = spread(&bed.oni_temps(&result.tile_powers).unwrap());
    assert!(
        after < 0.3 * before,
        "FVM-verified spread must shrink substantially: {before:.3} -> {after:.3} °C"
    );
}

#[test]
fn thermal_aware_allocation_beats_row_major_on_the_fvm() {
    let bed = Testbed::build();
    let model = InfluenceModel::calibrate(4, Watts::new(1.0), |p: &[Watts]| {
        bed.oni_temps(p)
            .map_err(|e| vcsel_control::ControlError::BadParameter { reason: e.to_string() })
    })
    .unwrap();

    let jobs: Vec<Job> = (0..2).map(|id| Job { id, power: Watts::new(3.0) }).collect();
    let naive = allocate_jobs(&model, &jobs, Watts::new(6.0), AllocationPolicy::RowMajor).unwrap();
    let smart =
        allocate_jobs(&model, &jobs, Watts::new(6.0), AllocationPolicy::ThermalAware).unwrap();

    let spread = |powers: &[Watts]| {
        let temps = bed.oni_temps(powers).unwrap();
        let hi = temps.iter().map(|t| t.value()).fold(f64::NEG_INFINITY, f64::max);
        let lo = temps.iter().map(|t| t.value()).fold(f64::INFINITY, f64::min);
        hi - lo
    };
    assert!(
        spread(&smart.tile_powers) < spread(&naive.tile_powers),
        "thermal-aware placement must beat row-major on the simulator"
    );
}
