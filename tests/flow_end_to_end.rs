//! End-to-end methodology tests: the paper's qualitative claims checked on
//! the reduced case-study system (experiment E10 and the headline claims of
//! Sections V-B / V-C).

use std::sync::OnceLock;

use vcsel_onoc::prelude::*;

/// One shared study for the whole file (construction costs several FVM
/// solves in debug mode).
fn shared_study() -> &'static (DesignFlow, ThermalStudy) {
    static STUDY: OnceLock<(DesignFlow, ThermalStudy)> = OnceLock::new();
    STUDY.get_or_init(|| {
        let flow = DesignFlow::paper();
        let study = ThermalStudy::new(
            SccConfig { oni_count: 4, ..SccConfig::tiny_test() },
            flow.simulator(),
        )
        .expect("study builds");
        (flow, study)
    })
}

#[test]
fn heater_optimum_is_near_paper_ratio() {
    // Paper Section V-B: "the smallest gradient is obtained for
    // P_heater = 0.3 x P_VCSEL".
    let (_, study) = shared_study();
    for pv in [2.0, 4.0, 6.0] {
        let exploration =
            study.explore_heater(Watts::from_milliwatts(pv), Watts::new(2.0), 1.0, 5).unwrap();
        assert!(
            (0.15..=0.55).contains(&exploration.optimal_ratio),
            "P_VCSEL = {pv} mW: optimal ratio {} outside the paper's ~0.3 zone",
            exploration.optimal_ratio
        );
    }
}

#[test]
fn gradient_scales_roughly_linearly_with_vcsel_power() {
    // Paper: "significant impact of P_VCSEL on the gradient temperature
    // between lasers and MRs (1.7 °C/mW)" — i.e. near-proportional growth.
    let (_, study) = shared_study();
    let chip = Watts::new(2.0);
    let g = |pv: f64| {
        study
            .evaluate(Watts::from_milliwatts(pv), Watts::ZERO, chip)
            .unwrap()
            .worst_gradient()
            .value()
    };
    let g2 = g(2.0);
    let g4 = g(4.0);
    let g6 = g(6.0);
    // Proportionality within 25 % (the offset from chip heating is small).
    assert!((g4 / g2 - 2.0).abs() < 0.5, "g4/g2 = {}", g4 / g2);
    assert!((g6 / g2 - 3.0).abs() < 0.75, "g6/g2 = {}", g6 / g2);
}

#[test]
fn heater_shrinks_gradient_at_modest_average_cost() {
    // Paper Figure 10: heater at 0.3 x P_VCSEL cuts the gradient several
    // times over while the average rises by well under the gradient gain.
    //
    // The strict paper inequality (cost << gain) needs the full-die 8-ONI
    // configuration, where the no-heater gradient is ~10 °C; on this
    // reduced 4-ONI / tiny-mesh system the gradient is only ~2.4 °C while
    // the average cost (set by heater power times package resistance, which
    // does not shrink with the mesh) stays ~3 °C, so cost/gain lands near
    // 1.6-1.7 at every reduced fidelity we can afford in a unit test. Keep
    // the qualitative claim here — heater buys a large relative gradient
    // reduction for a bounded average cost — and leave the quantitative
    // figure to the full-fidelity `fig10_heater` report binary.
    let (_, study) = shared_study();
    let pv = Watts::from_milliwatts(6.0);
    let chip = Watts::new(2.0);
    let without = study.evaluate(pv, Watts::ZERO, chip).unwrap();
    let with = study.evaluate(pv, pv * 0.3, chip).unwrap();
    let gradient_gain = without.worst_gradient().value() - with.worst_gradient().value();
    let average_cost = with.mean_average().value() - without.mean_average().value();
    assert!(gradient_gain > 0.5, "gain {gradient_gain}");
    assert!(
        with.mean_average() > without.mean_average(),
        "heater adds power, the average must rise"
    );
    assert!(average_cost < 2.5 * gradient_gain, "cost {average_cost} vs gain {gradient_gain}");
}

#[test]
fn snr_orders_activities_like_the_paper() {
    // Paper Figure 12: diagonal activity (large inter-ONI gradients)
    // yields lower SNR than uniform activity at the same placement.
    // `tiny_test`'s default 6 mm ring is degenerate for this claim: it
    // clusters all ONIs within ~1 mm of the die center, where the diagonal
    // quadrant pattern has a saddle point and contributes almost no
    // inter-ONI difference (measured: diagonal spread 0.16 °C vs uniform
    // 0.52 °C, inverting the paper's ordering). A 16 mm ring places the
    // ONIs inside the quadrants, where the paper's ordering holds with a
    // wide margin (1.75 °C vs 0.42 °C).
    let flow = DesignFlow::paper();
    let p_vcsel = Watts::from_milliwatts(3.6);
    let run = |activity: Activity| {
        let config = SccConfig {
            oni_count: 4,
            activity,
            placement: vcsel_arch::PlacementCase::Custom {
                perimeter: vcsel_units::Meters::from_millimeters(16.0),
            },
            ..SccConfig::tiny_test()
        };
        let study = ThermalStudy::new(config, flow.simulator()).unwrap();
        let outcome = study.evaluate(p_vcsel, p_vcsel * 0.3, Watts::new(4.0)).unwrap();
        let snr = flow.evaluate_snr(study.system(), &outcome, p_vcsel).unwrap();
        (outcome.inter_oni_spread().value(), snr.worst_snr_db)
    };
    let (spread_uniform, snr_uniform) = run(Activity::Uniform);
    let (spread_diag, snr_diag) = run(Activity::Diagonal);
    assert!(
        spread_diag > spread_uniform,
        "diagonal must spread ONI temperatures more: {spread_diag} vs {spread_uniform}"
    );
    assert!(
        snr_diag <= snr_uniform + 1e-9,
        "diagonal SNR {snr_diag} must not beat uniform {snr_uniform}"
    );
}

#[test]
fn hotter_chip_reduces_laser_output() {
    // Paper Section III-C: at fixed P_VCSEL, chip activity heats the laser
    // and reduces the emitted optical power.
    let (flow, study) = shared_study();
    let p_vcsel = Watts::from_milliwatts(3.6);
    let cool = study.evaluate(p_vcsel, Watts::ZERO, Watts::new(1.0)).unwrap();
    let hot = study.evaluate(p_vcsel, Watts::ZERO, Watts::new(6.0)).unwrap();
    let snr_cool = flow.evaluate_snr(study.system(), &cool, p_vcsel).unwrap();
    let snr_hot = flow.evaluate_snr(study.system(), &hot, p_vcsel).unwrap();
    assert!(snr_hot.mean_injected < snr_cool.mean_injected);
}

#[test]
fn links_meet_receiver_sensitivity_at_operating_point() {
    // Paper Section V-C: "This analysis validates that the ONoC matches
    // with the receiver sensitivity and SNR requirements."
    let (flow, study) = shared_study();
    let p_vcsel = Watts::from_milliwatts(3.6);
    let outcome = study.evaluate(p_vcsel, p_vcsel * 0.3, Watts::new(2.0)).unwrap();
    let snr = flow.evaluate_snr(study.system(), &outcome, p_vcsel).unwrap();
    assert!(snr.all_detected, "links must meet the -20 dBm sensitivity");
    assert!(snr.worst_snr_db > 10.0, "worst SNR {} unusable", snr.worst_snr_db);
}

#[test]
fn chessboard_beats_clustered_layout() {
    // Paper Section III-B: alternating VCSELs and MRs "contributes to
    // reduce MRs heating power through a better initial distribution of
    // the heat generated by VCSELs".
    let flow = DesignFlow::paper();
    let gradient_for = |layout: OniLayout| {
        let study =
            ThermalStudy::new(SccConfig { layout, ..SccConfig::tiny_test() }, flow.simulator())
                .unwrap();
        study
            .evaluate(Watts::from_milliwatts(4.0), Watts::ZERO, Watts::new(2.0))
            .unwrap()
            .worst_gradient()
            .value()
    };
    let chessboard = gradient_for(OniLayout::Chessboard);
    let clustered = gradient_for(OniLayout::Clustered);
    assert!(
        chessboard < clustered,
        "chessboard ({chessboard} °C) must beat clustered ({clustered} °C)"
    );
}
