//! Multigrid solve-engine regressions on the real case-study FVM systems.
//!
//! Five claims are pinned here:
//!
//! 1. **Strength** — on the tiny SCC mesh, multigrid-preconditioned CG
//!    needs at most half the iterations of IC(0)-CG while producing the
//!    same field.
//! 2. **Threading safety** — the threaded V-cycle (banded block-SSOR
//!    smoothers, threaded transfers) produces the same field as the
//!    forced-serial cycle, with an essentially unchanged iteration count.
//! 3. **Shared operator** — the hierarchy's finest level aliases the
//!    engine's matrix allocation instead of cloning it.
//! 4. **Mesh independence** — refining the same floorplan from
//!    `Fidelity::Tiny` to `Fidelity::Fast` may grow the multigrid CG
//!    iteration count by at most 1.5× (one-level preconditioners grow much
//!    faster; that growth is why they cannot reach `Fidelity::Paper`).
//! 5. **Paper scale** — a full-die `Fidelity::Paper` steady solve
//!    (~2.6 M unknowns) completes through the multigrid engine. Ignored by
//!    default: run with `cargo test --release -- --ignored` (minutes, not
//!    suitable for the debug-profile tier-1 loop).

use vcsel_arch::{Fidelity, SccConfig, SccSystem};
use vcsel_thermal::{MultigridConfig, PreconditionerKind, SolveContext};
use vcsel_units::Watts;

fn system_at(fidelity: Fidelity) -> (SccSystem, vcsel_thermal::MeshSpec) {
    let config =
        SccConfig { p_vcsel: Watts::from_milliwatts(4.0), fidelity, ..SccConfig::tiny_test() };
    let system = SccSystem::build(&config).expect("SCC builds");
    let spec = system.mesh_spec().expect("mesh spec");
    (system, spec)
}

fn multigrid_kind() -> PreconditionerKind {
    PreconditionerKind::Multigrid { config: MultigridConfig::default() }
}

#[test]
fn multigrid_cg_needs_at_most_half_the_ic0_iterations_on_the_scc_mesh() {
    let (system, spec) = system_at(Fidelity::Tiny);
    let mut ic0 = SolveContext::new(system.design(), &spec).expect("context");
    assert_eq!(ic0.preconditioner_name(), "ic0", "tiny meshes stay on IC(0) by default");
    let mut mg = SolveContext::new(system.design(), &spec)
        .expect("context")
        .with_preconditioner(multigrid_kind())
        .expect("hierarchy builds");
    assert_eq!(mg.preconditioner_name(), "multigrid");

    let map_i = ic0.solve().expect("ic0 solves");
    let map_m = mg.solve().expect("multigrid solves");

    let (iters_i, iters_m) = (ic0.last_iterations(), mg.last_iterations());
    assert!(iters_i > 0 && iters_m > 0, "both must actually iterate");
    assert!(
        2 * iters_m <= iters_i,
        "multigrid-CG took {iters_m} iterations vs IC(0)-CG {iters_i} on {} unknowns — \
         expected at most half",
        mg.unknowns()
    );
    for (a, b) in map_i.temperatures().iter().zip(map_m.temperatures()) {
        assert!((a - b).abs() < 1e-6, "IC(0) {a} vs multigrid {b}");
    }
}

#[test]
fn parallel_and_serial_multigrid_engines_agree_on_the_scc_mesh() {
    // The tiny SCC operator (~465 k nnz) sits above the threading size
    // gate, so on multi-core machines the default engine runs banded
    // block-SSOR smoothers and threaded transfer SpMVs. Against the
    // forced-serial configuration the solved field must agree to solver
    // tolerance and the CG iteration count must not move by more than the
    // band-boundary couplings can explain (they are a ~1e-4 fraction of
    // the operator; on one hardware thread both paths are identical).
    let (system, spec) = system_at(Fidelity::Tiny);
    let mut results = Vec::new();
    for parallel_sweeps in [true, false] {
        let config = MultigridConfig { parallel_sweeps, ..Default::default() };
        let mut ctx = SolveContext::new(system.design(), &spec)
            .expect("context")
            .with_preconditioner(PreconditionerKind::Multigrid { config })
            .expect("hierarchy builds");
        let map = ctx.solve().expect("steady solve");
        results.push((ctx.last_iterations() as i64, map));
    }
    let (parallel, serial) = (&results[0], &results[1]);
    assert!(
        (parallel.0 - serial.0).abs() <= 2,
        "iteration counts diverged: parallel {} vs serial {}",
        parallel.0,
        serial.0
    );
    for (a, b) in parallel.1.temperatures().iter().zip(serial.1.temperatures()) {
        assert!((a - b).abs() < 1e-6, "parallel {a} vs serial {b}");
    }
}

#[test]
fn multigrid_engine_holds_one_fine_operator_copy() {
    // The shared-operator contract of the engine refactor: the multigrid
    // hierarchy's finest level must be the engine's own matrix allocation
    // (at paper scale the old clone cost ~215 MB twice over).
    let (system, spec) = system_at(Fidelity::Tiny);
    let ctx = SolveContext::new_preconditioned(system.design(), &spec, multigrid_kind())
        .expect("context");
    let hierarchy = ctx.preconditioner().as_multigrid().expect("multigrid engine").hierarchy();
    assert!(
        std::sync::Arc::ptr_eq(ctx.shared_operator(), hierarchy.fine_operator()),
        "hierarchy must alias the engine's operator, not clone it"
    );
}

#[test]
fn multigrid_iteration_count_is_mesh_independent_from_tiny_to_fast() {
    let mut iterations = Vec::new();
    for fidelity in [Fidelity::Tiny, Fidelity::Fast] {
        let (system, spec) = system_at(fidelity);
        let mut ctx = SolveContext::new(system.design(), &spec)
            .expect("context")
            .with_preconditioner(multigrid_kind())
            .expect("hierarchy builds");
        ctx.solve().expect("steady solve");
        iterations.push(ctx.last_iterations().max(1));
    }
    assert!(
        2.0 * iterations[1] as f64 <= 3.0 * iterations[0] as f64,
        "multigrid iteration count grew more than 1.5x under refinement: \
         tiny {} vs fast {}",
        iterations[0],
        iterations[1]
    );
}

/// Full paper-fidelity steady solve — the workload the multigrid subsystem
/// exists for. `cargo test --release --test multigrid_engine -- --ignored`.
#[test]
#[ignore = "paper-scale solve (~2.6M unknowns); run in release, takes minutes"]
fn paper_fidelity_steady_solve_completes_through_the_multigrid_engine() {
    let config = SccConfig {
        p_vcsel: Watts::from_milliwatts(4.0),
        fidelity: Fidelity::Paper,
        ..SccConfig::default()
    };
    let system = SccSystem::build(&config).expect("paper SCC builds");
    let spec = system.mesh_spec().expect("mesh spec");
    let mut ctx = SolveContext::new(system.design(), &spec).expect("paper-scale context");
    assert_eq!(
        ctx.preconditioner_name(),
        "multigrid",
        "paper-scale steady engines must default to multigrid"
    );
    let map = ctx.solve().expect("paper-scale steady solve");
    let hottest = map.hottest().1.value();
    assert!(
        hottest > 40.0 && hottest < 150.0,
        "paper-scale field implausible: hottest {hottest} °C"
    );
    assert!(
        ctx.last_iterations() < 200,
        "mesh independence broken at paper scale: {} iterations",
        ctx.last_iterations()
    );
}
