//! Multigrid solve-engine regressions on the real case-study FVM systems.
//!
//! Three claims are pinned here:
//!
//! 1. **Strength** — on the tiny SCC mesh, multigrid-preconditioned CG
//!    needs at most half the iterations of IC(0)-CG while producing the
//!    same field.
//! 2. **Mesh independence** — refining the same floorplan from
//!    `Fidelity::Tiny` to `Fidelity::Fast` may grow the multigrid CG
//!    iteration count by at most 1.5× (one-level preconditioners grow much
//!    faster; that growth is why they cannot reach `Fidelity::Paper`).
//! 3. **Paper scale** — a full-die `Fidelity::Paper` steady solve
//!    (~2.6 M unknowns) completes through the multigrid engine. Ignored by
//!    default: run with `cargo test --release -- --ignored` (minutes, not
//!    suitable for the debug-profile tier-1 loop).

use vcsel_arch::{Fidelity, SccConfig, SccSystem};
use vcsel_thermal::{MultigridConfig, PreconditionerKind, SolveContext};
use vcsel_units::Watts;

fn system_at(fidelity: Fidelity) -> (SccSystem, vcsel_thermal::MeshSpec) {
    let config =
        SccConfig { p_vcsel: Watts::from_milliwatts(4.0), fidelity, ..SccConfig::tiny_test() };
    let system = SccSystem::build(&config).expect("SCC builds");
    let spec = system.mesh_spec().expect("mesh spec");
    (system, spec)
}

fn multigrid_kind() -> PreconditionerKind {
    PreconditionerKind::Multigrid { config: MultigridConfig::default() }
}

#[test]
fn multigrid_cg_needs_at_most_half_the_ic0_iterations_on_the_scc_mesh() {
    let (system, spec) = system_at(Fidelity::Tiny);
    let mut ic0 = SolveContext::new(system.design(), &spec).expect("context");
    assert_eq!(ic0.preconditioner_name(), "ic0", "tiny meshes stay on IC(0) by default");
    let mut mg = SolveContext::new(system.design(), &spec)
        .expect("context")
        .with_preconditioner(multigrid_kind())
        .expect("hierarchy builds");
    assert_eq!(mg.preconditioner_name(), "multigrid");

    let map_i = ic0.solve().expect("ic0 solves");
    let map_m = mg.solve().expect("multigrid solves");

    let (iters_i, iters_m) = (ic0.last_iterations(), mg.last_iterations());
    assert!(iters_i > 0 && iters_m > 0, "both must actually iterate");
    assert!(
        2 * iters_m <= iters_i,
        "multigrid-CG took {iters_m} iterations vs IC(0)-CG {iters_i} on {} unknowns — \
         expected at most half",
        mg.unknowns()
    );
    for (a, b) in map_i.temperatures().iter().zip(map_m.temperatures()) {
        assert!((a - b).abs() < 1e-6, "IC(0) {a} vs multigrid {b}");
    }
}

#[test]
fn multigrid_iteration_count_is_mesh_independent_from_tiny_to_fast() {
    let mut iterations = Vec::new();
    for fidelity in [Fidelity::Tiny, Fidelity::Fast] {
        let (system, spec) = system_at(fidelity);
        let mut ctx = SolveContext::new(system.design(), &spec)
            .expect("context")
            .with_preconditioner(multigrid_kind())
            .expect("hierarchy builds");
        ctx.solve().expect("steady solve");
        iterations.push(ctx.last_iterations().max(1));
    }
    assert!(
        2.0 * iterations[1] as f64 <= 3.0 * iterations[0] as f64,
        "multigrid iteration count grew more than 1.5x under refinement: \
         tiny {} vs fast {}",
        iterations[0],
        iterations[1]
    );
}

/// Full paper-fidelity steady solve — the workload the multigrid subsystem
/// exists for. `cargo test --release --test multigrid_engine -- --ignored`.
#[test]
#[ignore = "paper-scale solve (~2.6M unknowns); run in release, takes minutes"]
fn paper_fidelity_steady_solve_completes_through_the_multigrid_engine() {
    let config = SccConfig {
        p_vcsel: Watts::from_milliwatts(4.0),
        fidelity: Fidelity::Paper,
        ..SccConfig::default()
    };
    let system = SccSystem::build(&config).expect("paper SCC builds");
    let spec = system.mesh_spec().expect("mesh spec");
    let mut ctx = SolveContext::new(system.design(), &spec).expect("paper-scale context");
    assert_eq!(
        ctx.preconditioner_name(),
        "multigrid",
        "paper-scale steady engines must default to multigrid"
    );
    let map = ctx.solve().expect("paper-scale steady solve");
    let hottest = map.hottest().1.value();
    assert!(
        hottest > 40.0 && hottest < 150.0,
        "paper-scale field implausible: hottest {hottest} °C"
    );
    assert!(
        ctx.last_iterations() < 200,
        "mesh independence broken at paper scale: {} iterations",
        ctx.last_iterations()
    );
}
