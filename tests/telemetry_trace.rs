//! Observability contract tests: the telemetry subsystem end to end.
//!
//! Three bars from the observability PR are pinned here:
//!
//! 1. **Zero observable effect**: solving with a full-capture sink must
//!    produce the bitwise-identical temperature field and the same CG
//!    iteration count as solving with telemetry disabled — instrumentation
//!    may time and count, never steer.
//! 2. **Export validity**: the hand-rolled chrome-trace writer must emit
//!    JSON that a strict parser accepts, with the Trace Event Format
//!    fields intact (round-tripped through the `serde_json` shim).
//! 3. **Event coverage**: a scenario run through an attached sink must
//!    leave the story in the trace — rung attempts, the forced
//!    escalation, the remap triggered by a VCSEL death, the fault
//!    markers and per-solve samples with residual histories.

use vcsel_arch::{SccConfig, SccSystem};
use vcsel_core::scenarios::{
    run_scenario_with, FaultEvent, FaultKind, MetricPins, Scenario, TrafficPattern, DEFAULT_SEED,
};
use vcsel_telemetry::{export, EventKind, TelemetrySink, TraceMode};
use vcsel_thermal::SolveContext;
use vcsel_units::{Celsius, Watts};

fn tiny_system() -> (SccSystem, vcsel_thermal::MeshSpec) {
    let config = SccConfig { p_vcsel: Watts::from_milliwatts(4.0), ..SccConfig::tiny_test() };
    let system = SccSystem::build(&config).expect("tiny SCC builds");
    let spec = system.mesh_spec().expect("mesh spec");
    (system, spec)
}

#[test]
fn tracing_on_and_off_produce_bitwise_identical_solves() {
    let (system, spec) = tiny_system();

    let mut off = SolveContext::new(system.design(), &spec)
        .expect("context")
        .with_telemetry(TelemetrySink::disabled());
    let sink = TelemetrySink::new(TraceMode::Full);
    let mut on =
        SolveContext::new(system.design(), &spec).expect("context").with_telemetry(sink.clone());

    let map_off = off.solve().expect("untraced solve");
    let map_on = on.solve().expect("traced solve");

    assert_eq!(
        off.last_iterations(),
        on.last_iterations(),
        "tracing changed the CG iteration count"
    );
    assert_eq!(map_off.temperatures().len(), map_on.temperatures().len());
    for (i, (a, b)) in map_off.temperatures().iter().zip(map_on.temperatures()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "cell {i}: {a} (off) vs {b} (on)");
    }

    // The traced run must actually have captured something.
    let data = sink.drain();
    assert!(
        data.events.iter().any(|e| e.name == "steady_solve" && e.cat == "thermal"),
        "missing the steady_solve span"
    );
    let sample = data.samples.first().expect("one solve sample");
    assert_eq!(sample.iterations as usize, on.last_iterations());
    assert!(
        !sample.residual_history.is_empty(),
        "full mode must capture the per-iteration residual history"
    );
    assert!(sample.converged && sample.residual.is_finite());
}

#[test]
fn chrome_trace_export_round_trips_through_a_strict_json_parser() {
    let sink = TelemetrySink::new(TraceMode::Full);
    {
        let mut root = sink.span("test", "root");
        root.arg("label", vcsel_telemetry::ArgValue::Str("a\"quoted\"\nlabel"));
        let _inner = sink.span("test", "inner");
    }
    sink.instant("test", "marker", &[vcsel_telemetry::Arg::f64("value", 1.5)]);
    sink.counter("test", "gauge", 42.0);

    let data = sink.drain();
    assert_eq!(data.events.len(), 4);
    let json = export::chrome_trace_json(&data);

    // The shim's parser is strict (rejects trailing garbage, bad escapes,
    // non-finite numbers), so a clean parse is the validity bar.
    let root: serde::Value = {
        struct Raw(serde::Value);
        impl serde::Deserialize for Raw {
            fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
                Ok(Raw(value.clone()))
            }
        }
        serde_json::from_str::<Raw>(&json).expect("trace JSON parses").0
    };

    let events = root
        .get("traceEvents")
        .and_then(serde::Value::as_array)
        .expect("traceEvents array present");
    assert_eq!(events.len(), 4);
    for ev in events {
        let ph = ev.get("ph").expect("ph present");
        assert!(
            matches!(ph, serde::Value::Str(s) if ["X", "i", "C"].contains(&s.as_str())),
            "unknown phase {ph:?}"
        );
        assert!(ev.get("ts").and_then(serde::Value::as_f64).is_some(), "numeric ts");
        if matches!(ph, serde::Value::Str(s) if s == "X") {
            assert!(ev.get("dur").and_then(serde::Value::as_f64).is_some(), "span dur");
        }
    }
    // The escaped arg string survives the round trip intact.
    let root_span = events
        .iter()
        .find(|e| e.get("name") == Some(&serde::Value::Str("root".into())))
        .expect("root span exported");
    assert_eq!(
        root_span.get("args").and_then(|a| a.get("label")),
        Some(&serde::Value::Str("a\"quoted\"\nlabel".into()))
    );
}

#[test]
fn scenario_trace_carries_escalation_remap_and_fault_events() {
    // The compressed cascade from the fault-injection suite, this time
    // with a sink attached: the closed-loop responses must appear as
    // structured events, not just aggregate report counters.
    let scenario = Scenario {
        name: "telemetry-cascade",
        description: "compressed cascade for the trace contract",
        steps: 12,
        dt_s: 1e-2,
        control_period: 3,
        temp_limit: Celsius::new(95.0),
        traffic: TrafficPattern::AllToAll,
        events: vec![
            FaultEvent { at_step: 2, kind: FaultKind::SolverFault },
            FaultEvent { at_step: 4, kind: FaultKind::VcselDeath { oni: 1 } },
            FaultEvent { at_step: 6, kind: FaultKind::TrafficBurst { multiplier: 2.0 } },
        ],
        pins: MetricPins::default(),
    };
    let sink = TelemetrySink::new(TraceMode::Full);
    let report = run_scenario_with(&scenario, DEFAULT_SEED, &sink).expect("scenario runs");
    assert!(report.solver_escalations >= 1 && report.remap_ran);

    let data = sink.drain();
    let has = |cat: &str, name: &str| data.events.iter().any(|e| e.cat == cat && e.name == name);
    assert!(has("solver", "rung_attempt"), "rung attempts missing from the trace");
    assert!(has("solver", "escalation"), "the forced escalation missing from the trace");
    assert!(has("scenario", "remap"), "the remap event missing from the trace");
    assert!(has("scenario", "remap_search"), "the remap search span missing");
    assert!(has("scenario", "fault"), "fault markers missing from the trace");
    assert!(has("scenario", "scenario_run"), "the run-level span missing");
    assert!(has("thermal", "transient_step"), "per-step spans missing");

    // Spans nest: every transient_step must sit inside the run span.
    let run_span = data
        .events
        .iter()
        .find(|e| e.name == "scenario_run" && e.kind == EventKind::Span)
        .expect("run span recorded");
    let run_end = run_span.start_ns + run_span.dur_ns;
    for step in data.events.iter().filter(|e| e.name == "transient_step") {
        assert!(
            step.start_ns >= run_span.start_ns && step.start_ns + step.dur_ns <= run_end,
            "a step span escaped the run span"
        );
    }

    // One solve sample per transient step, each with its residual history
    // and the scenario phase timings accounted for in the report.
    assert_eq!(data.samples.len(), scenario.steps);
    assert!(data.samples.iter().all(|s| !s.residual_history.is_empty()));
    let sampled: u64 = data.samples.iter().map(|s| s.total_iterations).sum();
    assert_eq!(sampled as usize, report.cg_iterations, "sampled CG iterations disagree");
    assert!(report.setup_ms > 0.0 && report.step_ms > 0.0, "phase timings missing");
}
