//! CLI contract tests for `onoc_dse --sweep`: usage and input errors must
//! exit with code 2 and say why on stderr, never panic, and never start a
//! solve. The happy path is covered by `tests/batch_engine.rs` and the
//! in-crate `vcsel_core::batch` tests; these pin the error surface.

use std::process::Command;

fn onoc_dse(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_onoc_dse")).args(args).output().expect("onoc_dse spawns")
}

#[test]
fn sweep_without_file_argument_is_a_usage_error() {
    let out = onoc_dse(&["--sweep"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--sweep needs a file argument"), "stderr: {err}");
}

#[test]
fn sweep_with_missing_file_is_an_io_error() {
    let out = onoc_dse(&["--sweep", "definitely/not/a/file.json"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot read"), "stderr: {err}");
}

#[test]
fn sweep_with_unparsable_file_is_a_parse_error() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/tmp");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(format!("dse-cli-garbage-{}.json", std::process::id()));
    std::fs::write(&path, "{ not json").expect("write garbage");
    let out = onoc_dse(&["--sweep", path.to_str().expect("utf8 path")]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot parse"), "stderr: {err}");
}

#[test]
fn sweep_and_positional_spec_are_mutually_exclusive() {
    let out = onoc_dse(&["--sweep", "a.json", "b.json"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("pass one or the other"), "stderr: {err}");
}

#[test]
fn empty_point_list_is_rejected_before_any_solve() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/tmp");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(format!("dse-cli-empty-{}.json", std::process::id()));
    std::fs::write(
        &path,
        r#"{
            "name": "empty",
            "base": {
                "name": "tiny", "placement": "case1", "oni_count": 4,
                "layout": "chessboard", "activity": "Uniform",
                "p_chip_w": 2.0, "p_vcsel_mw": 3.6,
                "heater": {"fixed": {"ratio": 0.3}}, "fidelity": "tiny"
            },
            "points": []
        }"#,
    )
    .expect("write sweep");
    let out = onoc_dse(&["--sweep", path.to_str().expect("utf8 path")]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("declares no points"), "stderr: {err}");
}

#[test]
fn unknown_option_is_a_usage_error() {
    let out = onoc_dse(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown option"), "stderr: {err}");
}
