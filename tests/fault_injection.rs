//! Fault-injection regressions: the self-healing solve path end to end.
//!
//! These tests pin the robustness contract added with the scenario
//! engine: an injected preconditioner breakdown must recover through the
//! solve ladder to the *same* field the healthy engine produces, a failed
//! step must surface as a typed error with the trajectory rolled back
//! (never a silently degraded field), the declarative power schedule must
//! match hand-rolled stepping, and the scenario catalogue's co-simulation
//! must hold its metric pins.

use vcsel_arch::{SccConfig, SccSystem};
use vcsel_core::scenarios::{
    run_scenario, scenario_config, FaultEvent, FaultKind, MetricPins, Scenario, TrafficPattern,
    DEFAULT_SEED,
};
use vcsel_numerics::solver::SolveOptions;
use vcsel_thermal::{
    Block, Boundary, BoundaryCondition, BoxRegion, Design, Material, MeshSpec, PowerEvent,
    PowerSchedule, PreconditionerKind, SolveContext, TransientStepper,
};
use vcsel_units::{Celsius, Meters, Watts, WattsPerSquareMeterKelvin};

fn mm(v: f64) -> Meters {
    Meters::from_millimeters(v)
}

/// A small grouped design for transient tests: one controllable source on
/// a convectively cooled slab.
fn grouped_slab() -> (Design, MeshSpec) {
    let domain = BoxRegion::new([Meters::ZERO; 3], [mm(4.0), mm(4.0), mm(1.0)]).expect("domain");
    let mut d = Design::new(domain, Material::SILICON).expect("design");
    d.set_boundary(
        Boundary::top(),
        BoundaryCondition::Convective {
            h: WattsPerSquareMeterKelvin::new(2_000.0),
            ambient: Celsius::new(40.0),
        },
    );
    let src = BoxRegion::new([mm(1.0), mm(1.0), Meters::ZERO], [mm(3.0), mm(3.0), mm(0.2)])
        .expect("source region");
    d.add_block(Block::heat_source("s", src, Material::COPPER, Watts::new(0.5)).with_group("src"));
    (d, MeshSpec::uniform(mm(0.5)))
}

#[test]
fn injected_breakdown_recovers_through_the_ladder_to_the_healthy_field() {
    // The acceptance bar of the fault-injection work: corrupt the active
    // preconditioner of the real case-study engine and require the ladder
    // to escalate and still land on the healthy answer.
    let config = SccConfig { p_vcsel: Watts::from_milliwatts(3.0), ..SccConfig::tiny_test() };
    let system = SccSystem::build(&config).expect("tiny SCC builds");
    let spec = system.mesh_spec().expect("mesh spec");

    // Solve well below the 1e-9 acceptance bar so the healthy/faulted
    // comparison measures the ladder, not the CG stopping criterion.
    let options = SolveOptions { tolerance: 1e-12, max_iterations: 100_000, relaxation: 1.6 };

    let mut healthy =
        SolveContext::new(system.design(), &spec).expect("context").with_options(options);
    let map_h = healthy.solve().expect("healthy solve");
    assert!(healthy.health().is_clean(), "healthy engine must not escalate");

    let mut faulted =
        SolveContext::new(system.design(), &spec).expect("context").with_options(options);
    faulted.inject_solver_fault();
    let map_f = faulted.solve().expect("faulted solve must still succeed");
    let health = faulted.health();
    assert!(health.converged, "recovered solve must be converged");
    assert!(health.recovered, "recovery must be flagged");
    assert!(health.escalations >= 1, "the ladder must have escalated");
    assert!(
        health.attempts.len() >= 2,
        "per-rung attempts must tell the story: {:?}",
        health.attempts
    );

    let mut worst = 0.0f64;
    for (a, b) in map_h.temperatures().iter().zip(map_f.temperatures()) {
        worst = worst.max((a - b).abs() / a.abs().max(1.0));
    }
    assert!(worst <= 1e-9, "fields must match to 1e-9 relative, worst {worst:.3e}");
}

#[test]
fn exhausted_ladder_is_a_typed_error_with_the_field_rolled_back() {
    // A single-rung strict ladder with a starvation-level iteration cap:
    // the step must fail *loudly* and leave the trajectory untouched.
    let (design, spec) = grouped_slab();
    let probe = [mm(2.0), mm(2.0), mm(0.1)];
    let mut stepper = TransientStepper::new(&design, &spec, Celsius::new(40.0), 1e-2)
        .expect("stepper builds")
        .with_preconditioner(PreconditionerKind::Jacobi)
        .expect("jacobi rung")
        .with_options(SolveOptions { tolerance: 1e-12, max_iterations: 2, relaxation: 1.6 });

    let err = stepper.step(&[("src", 1.0)]).expect_err("starved solve must fail");
    assert!(
        err.to_string().contains("did not converge") || err.to_string().contains("iterations"),
        "error must name the non-convergence: {err}"
    );
    assert_eq!(stepper.steps(), 0, "a failed step must not advance time");
    let t = stepper.temperature_at(probe).expect("probe in domain");
    assert!(
        (t.value() - 40.0).abs() < 1e-12,
        "field must roll back to the initial condition, got {t}"
    );
    assert!(!stepper.health().converged, "health must flag the failure");

    // The same stepper recovers once the cap is realistic.
    let mut stepper = stepper.with_options(SolveOptions {
        tolerance: 1e-9,
        max_iterations: 10_000,
        relaxation: 1.6,
    });
    stepper.step(&[("src", 1.0)]).expect("healthy cap converges");
    assert_eq!(stepper.steps(), 1);
}

#[test]
fn power_schedule_replay_matches_manual_stepping() {
    let (design, spec) = grouped_slab();
    let probe = [mm(2.0), mm(2.0), mm(0.1)];
    let dt = 5e-3;

    let schedule = PowerSchedule::new(
        &[("src", 1.0)],
        vec![PowerEvent::new(0.05, "src", 2.5), PowerEvent::new(0.1, "src", 0.0)],
    )
    .expect("schedule");

    let mut scheduled =
        TransientStepper::new(&design, &spec, Celsius::new(40.0), dt).expect("stepper");
    scheduled.run_schedule(&schedule, 30).expect("schedule replays");

    let mut manual =
        TransientStepper::new(&design, &spec, Celsius::new(40.0), dt).expect("stepper");
    for step in 0..30 {
        let t = step as f64 * dt;
        let scale = if t >= 0.1 {
            0.0
        } else if t >= 0.05 {
            2.5
        } else {
            1.0
        };
        manual.step(&[("src", scale)]).expect("manual step");
    }

    let a = scheduled.temperature_at(probe).expect("probe").value();
    let b = manual.temperature_at(probe).expect("probe").value();
    assert!((a - b).abs() < 1e-12, "schedule {a} vs manual {b}");
    assert_eq!(scheduled.steps(), manual.steps());
}

#[test]
fn cascade_scenario_self_heals_and_keeps_its_pins() {
    // A compressed cascade — solver fault, VCSEL death, burst — on the
    // real 4-ONI plant: every closed-loop response must engage and the
    // run must end converged with sane physics.
    let scenario = Scenario {
        name: "test-cascade",
        description: "compressed cascade for the integration suite",
        steps: 12,
        dt_s: 1e-2,
        control_period: 3,
        temp_limit: Celsius::new(95.0),
        traffic: TrafficPattern::AllToAll,
        events: vec![
            FaultEvent { at_step: 2, kind: FaultKind::SolverFault },
            FaultEvent { at_step: 4, kind: FaultKind::VcselDeath { oni: 1 } },
            FaultEvent { at_step: 6, kind: FaultKind::TrafficBurst { multiplier: 2.0 } },
        ],
        pins: MetricPins::default(),
    };
    let report = run_scenario(&scenario, DEFAULT_SEED).expect("scenario runs");

    assert!(report.converged, "no unflagged degraded fields");
    assert!(report.solver_escalations >= 1, "the solver fault must force an escalation");
    assert!(report.remap_ran, "the VCSEL death must trigger a remap");
    assert!(report.evacuated >= 1, "dead channels must be evacuated");
    assert!(report.remap_gain_db > -1e-9, "the remap search never worsens its start");
    assert!(
        report.peak_c > 42.0 && report.peak_c < 70.0,
        "peak {:.2} °C outside physical range",
        report.peak_c
    );
    assert!(report.cg_iterations > 0 && report.steps == scenario.steps);
    assert!(report.worst_snr_db.is_finite());
    assert!(scenario.pins.check(&report).is_empty(), "default pins must hold");

    // Determinism: the per-ONI plant split must be reproducible.
    let system = SccSystem::build(&scenario_config()).expect("plant builds");
    let design = vcsel_core::scenarios::per_oni_design(&system);
    assert!(design.group_names().contains(&"vcsel@1"));
}
