//! Offline shim for [`criterion`](https://bheisler.github.io/criterion.rs).
//!
//! Implements the harness surface the bench targets use —
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::bench_function`],
//! [`Criterion::bench_with_input`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`] and `Bencher::iter` — with a plain wall-clock measurement
//! loop instead of criterion's statistical machinery. Each target prints a
//! median ns/iter line, which is enough to compare runs by eye and to keep
//! `cargo bench` (and `cargo build --benches`) compiling in CI.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifies one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A compound id `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id carrying only a parameter, `criterion::BenchmarkId::from_parameter`.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// The timing loop handed to bench closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by `iter`.
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing a median ns/iter estimate.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that runs for
        // at least ~2ms, then take the median of a few batches.
        let mut iters: u64 = 1;
        let budget = Duration::from_millis(2);
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= budget || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 4).min(1 << 20);
        }
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    hint::black_box(routine());
                }
                start.elapsed().as_secs_f64() * 1e9 / iters as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.last_ns_per_iter = samples[samples.len() / 2];
    }
}

/// The top-level harness object.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
        let mut bencher = Bencher { last_ns_per_iter: f64::NAN };
        f(&mut bencher);
        if bencher.last_ns_per_iter.is_nan() {
            println!("bench {name:<40} (no timing loop executed)");
        } else {
            println!("bench {name:<40} {:>14.1} ns/iter", bencher.last_ns_per_iter);
        }
    }

    /// Benchmarks `f` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        Self::run_one(name, f);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        Self::run_one(&id.name, |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _parent: self }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's timing loop is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's timing loop is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        f: F,
    ) -> &mut Self {
        Criterion::run_one(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        Criterion::run_one(&format!("{}/{}", self.name, id.name), |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a group of bench targets, mirroring criterion's simple form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
