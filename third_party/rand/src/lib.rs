//! Offline shim for [`rand`](https://rust-random.github.io/book).
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64` and
//! `Rng::gen_range` over the numeric range types this workspace samples.
//! The generator is splitmix64 — statistically fine for activity-map
//! generation, deterministic for a given seed (which is all the callers
//! rely on), but **not** the real crate's ChaCha12 and not reproducible
//! against it.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit draw.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that `Rng::gen_range` can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        Range { start: f64::from(self.start), end: f64::from(self.end) }.sample_one(rng) as f32
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Shim stand-in for the standard generator (splitmix64, not ChaCha12).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ 0x6a09_e667_f3bc_c909 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_sequences_are_reproducible_and_seed_sensitive() {
        let draw = |seed: u64| -> Vec<f64> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..8).map(|_| rng.gen_range(0.5..1.5)).collect()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
        assert!(draw(7).iter().all(|&x| (0.5..1.5).contains(&x)));
    }

    #[test]
    fn integer_ranges_hit_bounds_eventually() {
        let mut rng = StdRng::seed_from_u64(1);
        let draws: Vec<usize> = (0..200).map(|_| rng.gen_range(0usize..4)).collect();
        for target in 0..4 {
            assert!(draws.contains(&target), "never drew {target}");
        }
        assert!(draws.iter().all(|&x| x < 4));
    }
}
