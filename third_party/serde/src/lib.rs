//! Offline shim for [`serde`](https://serde.rs).
//!
//! The build container has no crates.io access, so this crate provides the
//! subset of serde's surface the workspace actually uses, built around a
//! self-describing [`Value`] tree instead of serde's zero-copy
//! serializer/deserializer traits:
//!
//! * [`Serialize`] / [`Deserialize`] traits (value-based),
//! * `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//!   shim, honouring `#[serde(rename_all = "...")]`, `#[serde(transparent)]`,
//!   `#[serde(default)]` and `#[serde(default = "path")]`,
//! * impls for the primitive / std types the workspace serializes.
//!
//! The sibling `serde_json` shim renders [`Value`] to JSON text and parses
//! it back. Swapping these shims for the real crates requires only a
//! `Cargo.toml` change: the workspace sources use the standard API.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing serialized tree — the meeting point between the
/// `Serialize`/`Deserialize` traits and concrete formats like JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (insertion order preserved for stable output).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object, or `None` for any other variant.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array, or `None` for any other variant.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up `key` in an object (first match wins).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A short human label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Numeric view of any number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }
}

/// Error raised while converting a [`Value`] into a concrete type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An arbitrary message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// A struct field was absent.
    pub fn missing_field(field: &str) -> Self {
        Error(format!("missing field `{field}`"))
    }

    /// A value had the wrong shape.
    pub fn invalid_type(expected: &str, got: &Value) -> Self {
        Error(format!("invalid type: expected {expected}, found {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself as a [`Value`].
pub trait Serialize {
    /// Converts `self` into the serialized tree.
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Converts the serialized tree back into `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            _ => Err(Error::invalid_type("null", value)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::invalid_type("bool", value)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match *value {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => f as i64,
                    _ => return Err(Error::invalid_type("integer", value)),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match *value {
                    Value::Int(i) => u64::try_from(i)
                        .map_err(|_| Error::custom("negative value for unsigned integer"))?,
                    Value::UInt(u) => u,
                    Value::Float(f) if f.fract() == 0.0 && (0.0..1.9e19).contains(&f) => {
                        f as u64
                    }
                    _ => return Err(Error::invalid_type("integer", value)),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::invalid_type("number", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::invalid_type("string", value)),
        }
    }
}

impl Serialize for std::borrow::Cow<'_, str> {
    fn to_value(&self) -> Value {
        Value::Str(self.clone().into_owned())
    }
}

impl Deserialize for std::borrow::Cow<'_, str> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        String::from_value(value).map(std::borrow::Cow::Owned)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::invalid_type("single-character string", value)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::invalid_type("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::invalid_type("array", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected array of length {expected}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_vec_round_trip() {
        let v: Option<Vec<u64>> = Some(vec![1, 2, 3]);
        let tree = v.to_value();
        let back = Option::<Vec<u64>>::from_value(&tree).unwrap();
        assert_eq!(v, back);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn integer_coercions_check_range() {
        assert!(u16::from_value(&Value::Int(-1)).is_err());
        assert!(u16::from_value(&Value::Int(70_000)).is_err());
        assert_eq!(u16::from_value(&Value::Int(7)).unwrap(), 7);
        assert_eq!(i32::from_value(&Value::Float(4.0)).unwrap(), 4);
        assert!(i32::from_value(&Value::Float(4.5)).is_err());
    }
}
