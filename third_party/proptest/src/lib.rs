//! Offline shim for [`proptest`](https://proptest-rs.github.io/proptest).
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with `a in strategy` arguments and an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header, range and
//! tuple strategies, `proptest::collection::vec`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Unlike the real crate there is no shrinking: failures report the exact
//! sampled inputs instead, and sampling is fully deterministic (seeded from
//! the test name), so every failure reproduces by re-running the test.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the numerically heavy
        // FVM properties inside a sane test budget while still exercising
        // a meaningful slice of the input space.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 generator used for sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a case index and the test name, so distinct tests draw
    /// distinct (but reproducible) sequences.
    pub fn deterministic(case: u64, name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Something that can produce values for a property test.
pub trait Strategy {
    /// The type of the produced values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// A strategy producing a fixed value every time.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// The admissible lengths of a generated collection.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() as usize) % span;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };

    /// Mirror of `proptest::prelude::prop` for `prop::collection::vec` paths.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    // Internal: fully parsed form.
    (@expand $cfg:expr; $( $(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strategy:expr),+ $(,)?
    ) $body:block )*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::TestRng::deterministic(u64::from(case), stringify!($name));
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    // Each case runs in a closure so `prop_assume!` can skip
                    // it with `return` from ANY nesting depth — mirroring
                    // real proptest's rejection mechanism. A bare
                    // `break`/`continue` would bind to the nearest loop the
                    // user wrote inside the body instead (and a labeled
                    // break cannot cross macro_rules hygiene boundaries).
                    #[allow(clippy::redundant_closure_call)]
                    let _skipped: ::std::option::Option<()> = (|| {
                        $body
                        ::std::option::Option::Some(())
                    })();
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @expand $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @expand ::std::default::Default::default(); $($rest)* }
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Works at any nesting depth inside the property body: it returns from
/// the per-case closure `proptest!` wraps the body in.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::option::Option::None;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn ranges_respect_bounds(x in 1.5f64..9.5, n in 3usize..10, k in -3i32..=3) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..10).contains(&n));
            prop_assert!((-3..=3).contains(&k));
        }

        fn vec_strategy_respects_size(v in collection::vec((0usize..4, 0.0f64..1.0), 1..6)) {
            prop_assert!(!v.is_empty() && v.len() <= 5);
            prop_assert!(v.iter().all(|&(a, b)| a < 4 && (0.0..1.0).contains(&b)));
        }

        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        fn assume_skips_from_inside_a_loop(n in 1usize..6) {
            let mut seen = 0;
            for k in 0..n {
                prop_assume!(k < 3);
                seen = k + 1;
            }
            // If the assume fired (n > 3), the whole case must have been
            // abandoned — reaching here means every k stayed below 3.
            prop_assert!(seen <= 3);
            prop_assert!(n <= 3);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let strat = 0.0f64..1.0;
        let a: Vec<f64> =
            (0..5).map(|c| strat.sample(&mut TestRng::deterministic(c, "t"))).collect();
        let b: Vec<f64> =
            (0..5).map(|c| strat.sample(&mut TestRng::deterministic(c, "t"))).collect();
        assert_eq!(a, b);
    }
}
