//! Offline shim for [`serde_json`](https://docs.rs/serde_json).
//!
//! Renders the `serde` shim's [`Value`] tree to JSON text (`to_string`,
//! `to_string_pretty`) and parses JSON text back (`from_str`). Numbers
//! round-trip exactly: integers are kept as integers, floats are printed
//! with Rust's shortest-round-trip formatting and parsed with the
//! correctly-rounded `f64::from_str`.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes an instance of `T` from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest representation that round-trips.
                let _ = write!(out, "{f:?}");
            } else {
                // Match real serde_json's lossy default for non-finite floats.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid token at offset {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid token at offset {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid token at offset {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!("expected `,` or `}}` at offset {}", self.pos)))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc =
                        self.peek().ok_or_else(|| Error::new("unexpected end of string escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if !(self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u'))
                                {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<f64>("1e-3").unwrap(), 1e-3);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<String>(r#""a\nbA""#).unwrap(), "a\nbA");
    }

    #[test]
    fn float_round_trip_is_exact() {
        for &x in &[0.1, 1.0 / 3.0, 6.02214076e23, -1e-300, 55.123456789012345] {
            let text = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&text).unwrap(), x, "{text}");
        }
    }

    #[test]
    fn pretty_output_shape() {
        let v: Vec<Option<bool>> = vec![Some(true), None];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  true,\n  null\n]");
        assert_eq!(to_string(&v).unwrap(), "[true,null]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.5 trailing").is_err());
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
    }

    #[test]
    fn enum_rename_all_renames_tags_but_not_variant_fields() {
        // Matches real serde: the enum-level rename_all transforms variant
        // TAGS only; field keys inside a struct variant stay verbatim.
        #[allow(non_snake_case)]
        #[derive(serde::Serialize, serde::Deserialize, PartialEq, Debug)]
        #[serde(rename_all = "lowercase")]
        enum Mixed {
            Plain,
            WithData { innerValue: f64 },
        }

        assert_eq!(to_string(&Mixed::Plain).unwrap(), r#""plain""#);
        let v = Mixed::WithData { innerValue: 1.5 };
        let json = to_string(&v).unwrap();
        assert_eq!(json, r#"{"withdata":{"innerValue":1.5}}"#);
        assert_eq!(from_str::<Mixed>(&json).unwrap(), v);
    }
}
