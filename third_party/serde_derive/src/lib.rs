//! Offline shim for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the value-based traits of the sibling `serde` shim, without `syn`/`quote`
//! (unavailable in the offline build container). The supported grammar is
//! exactly what this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (single-field ones serialize transparently, matching
//!   real serde's newtype behaviour),
//! * enums with unit / named-field / tuple variants, externally tagged,
//! * container attrs `rename_all = "lowercase" | "snake_case"` and
//!   `transparent`,
//! * field attrs `default`, `default = "path"` and `rename = "name"`.
//!
//! Generics are rejected with a compile error rather than silently
//! mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

#[derive(Default)]
struct ContainerAttrs {
    rename_all: Option<String>,
    transparent: bool,
}

#[derive(Default)]
struct FieldAttrs {
    /// `Some(None)` = `#[serde(default)]`, `Some(Some(path))` = `#[serde(default = "path")]`.
    default: Option<Option<String>>,
    rename: Option<String>,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum VariantKind {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::std::compile_error!({msg:?});").parse().unwrap()
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match try_expand(input, mode) {
        Ok(ts) => ts,
        Err(msg) => compile_error(&msg),
    }
}

fn try_expand(input: TokenStream, mode: Mode) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let container = parse_attrs(&tokens, &mut pos)?.0;
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_any_ident(&tokens, &mut pos)?;
    let name = expect_any_ident(&tokens, &mut pos)?;
    if matches!(peek(&tokens, pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde shim derive does not support generic type `{name}`"));
    }

    let body = match keyword.as_str() {
        "struct" => expand_struct(&tokens, &mut pos, &name, &container, mode)?,
        "enum" => expand_enum(&tokens, &mut pos, &name, &container, mode)?,
        other => return Err(format!("cannot derive serde traits for `{other}` items")),
    };
    body.parse().map_err(|e| format!("serde shim derive generated invalid code: {e:?}"))
}

// ---------------------------------------------------------------------------
// Token-stream helpers
// ---------------------------------------------------------------------------

fn peek(tokens: &[TokenTree], pos: usize) -> Option<&TokenTree> {
    tokens.get(pos)
}

fn expect_any_ident(tokens: &[TokenTree], pos: &mut usize) -> Result<String, String> {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            Ok(id.to_string())
        }
        other => Err(format!("expected identifier, found {other:?}")),
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        if matches!(
            tokens.get(*pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *pos += 1;
        }
    }
}

/// Consumes leading `#[...]` attributes, returning parsed serde container
/// and field attrs (both are collected; callers use whichever applies).
fn parse_attrs(
    tokens: &[TokenTree],
    pos: &mut usize,
) -> Result<(ContainerAttrs, FieldAttrs), String> {
    let mut container = ContainerAttrs::default();
    let mut field = FieldAttrs::default();
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let group = match tokens.get(*pos + 1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                    other => return Err(format!("malformed attribute: {other:?}")),
                };
                parse_one_attr(group.stream(), &mut container, &mut field)?;
                *pos += 2;
            }
            _ => return Ok((container, field)),
        }
    }
}

/// Parses the inside of one `#[...]`; non-serde attributes are ignored.
fn parse_one_attr(
    stream: TokenStream,
    container: &mut ContainerAttrs,
    field: &mut FieldAttrs,
) -> Result<(), String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(()),
    }
    let args = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return Ok(()),
    };
    let args: Vec<TokenTree> = args.into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        let key = match &args[i] {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
                continue;
            }
            other => return Err(format!("unsupported serde attribute token: {other:?}")),
        };
        let mut value = None;
        if matches!(args.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            match args.get(i + 2) {
                Some(TokenTree::Literal(lit)) => {
                    value = Some(unquote(&lit.to_string())?);
                    i += 2;
                }
                other => return Err(format!("expected string literal, found {other:?}")),
            }
        }
        match (key.as_str(), value) {
            ("rename_all", Some(v)) => container.rename_all = Some(v),
            ("transparent", None) => container.transparent = true,
            ("default", v) => field.default = Some(v),
            ("rename", Some(v)) => field.rename = Some(v),
            ("deny_unknown_fields", None) => {} // shim always tolerates unknown fields
            (other, _) => return Err(format!("serde shim does not support attribute `{other}`")),
        }
        i += 1;
    }
    Ok(())
}

fn unquote(lit: &str) -> Result<String, String> {
    let inner = lit
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected plain string literal, found {lit}"))?;
    if inner.contains('\\') {
        return Err(format!("escapes not supported in serde attribute: {lit}"));
    }
    Ok(inner.to_string())
}

/// Skips a type expression up to a top-level `,` (tracking `<...>` depth).
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tt) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let attrs = parse_attrs(&tokens, &mut pos)?.1;
        skip_visibility(&tokens, &mut pos);
        let name = expect_any_ident(&tokens, &mut pos)?;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("expected `:` after field `{name}`, found {other:?}")),
        }
        skip_type(&tokens, &mut pos);
        pos += 1; // the comma (or one past the end)
        fields.push(Field { name, attrs });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for (i, tt) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if i + 1 == tokens.len() {
                        trailing_comma = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = trailing_comma;
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        parse_attrs(&tokens, &mut pos)?; // e.g. `#[default]`, doc comments
        let name = expect_any_ident(&tokens, &mut pos)?;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Name transforms
// ---------------------------------------------------------------------------

fn apply_rename(name: &str, rename_all: Option<&str>) -> Result<String, String> {
    Ok(match rename_all {
        None => name.to_string(),
        Some("lowercase") => name.to_lowercase(),
        Some("UPPERCASE") => name.to_uppercase(),
        Some("snake_case") => camel_to_snake(name),
        Some("SCREAMING_SNAKE_CASE") => camel_to_snake(name).to_uppercase(),
        Some("kebab-case") => camel_to_snake(name).replace('_', "-"),
        Some(other) => return Err(format!("unsupported rename_all rule `{other}`")),
    })
}

fn camel_to_snake(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, ch) in name.chars().enumerate() {
        if ch.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(ch.to_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn missing_field_expr(field: &Field) -> String {
    match &field.attrs.default {
        None => format!(
            "return ::std::result::Result::Err(::serde::Error::missing_field({:?}))",
            field.name
        ),
        Some(None) => "::std::default::Default::default()".to_string(),
        Some(Some(path)) => format!("{path}()"),
    }
}

fn field_key(field: &Field, rename_all: Option<&str>) -> Result<String, String> {
    match &field.attrs.rename {
        Some(explicit) => Ok(explicit.clone()),
        None => apply_rename(&field.name, rename_all),
    }
}

/// `{ f1: <read f1>, f2: <read f2> }` — the struct-literal body that rebuilds
/// named fields from the object expression `src`.
fn named_fields_reader(
    fields: &[Field],
    rename_all: Option<&str>,
    src: &str,
) -> Result<String, String> {
    let mut out = String::from("{");
    for f in fields {
        let key = field_key(f, rename_all)?;
        out.push_str(&format!(
            "{name}: match {src}.get({key:?}) {{ \
                ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?, \
                ::std::option::Option::None => {missing}, \
            }},",
            name = f.name,
            missing = missing_field_expr(f),
        ));
    }
    out.push('}');
    Ok(out)
}

/// Pushes `(key, value)` pairs for named fields into a `Vec` called `fields`,
/// reading each field through the expression produced by `access`.
fn named_fields_writer(
    fields: &[Field],
    rename_all: Option<&str>,
    access: impl Fn(&str) -> String,
) -> Result<String, String> {
    let mut out = String::from(
        "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();",
    );
    for f in fields {
        let key = field_key(f, rename_all)?;
        out.push_str(&format!(
            "fields.push((::std::string::String::from({key:?}), \
             ::serde::Serialize::to_value({})));",
            access(&f.name)
        ));
    }
    Ok(out)
}

fn expand_struct(
    tokens: &[TokenTree],
    pos: &mut usize,
    name: &str,
    container: &ContainerAttrs,
    mode: Mode,
) -> Result<String, String> {
    let rename_all = container.rename_all.as_deref();
    match tokens.get(*pos) {
        // Named-field struct.
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(g.stream())?;
            if container.transparent {
                if fields.len() != 1 {
                    return Err("#[serde(transparent)] requires exactly one field".into());
                }
                let f = &fields[0].name;
                return Ok(match mode {
                    Mode::Serialize => format!(
                        "impl ::serde::Serialize for {name} {{ \
                           fn to_value(&self) -> ::serde::Value {{ \
                             ::serde::Serialize::to_value(&self.{f}) }} }}"
                    ),
                    Mode::Deserialize => format!(
                        "impl ::serde::Deserialize for {name} {{ \
                           fn from_value(value: &::serde::Value) \
                             -> ::std::result::Result<Self, ::serde::Error> {{ \
                             ::std::result::Result::Ok({name} {{ \
                               {f}: ::serde::Deserialize::from_value(value)? }}) }} }}"
                    ),
                });
            }
            Ok(match mode {
                Mode::Serialize => {
                    let writer =
                        named_fields_writer(&fields, rename_all, |f| format!("&self.{f}"))?;
                    format!(
                        "impl ::serde::Serialize for {name} {{ \
                           fn to_value(&self) -> ::serde::Value {{ \
                             {writer} ::serde::Value::Object(fields) }} }}"
                    )
                }
                Mode::Deserialize => {
                    let reader = named_fields_reader(&fields, rename_all, "value")?;
                    format!(
                        "impl ::serde::Deserialize for {name} {{ \
                           fn from_value(value: &::serde::Value) \
                             -> ::std::result::Result<Self, ::serde::Error> {{ \
                             if value.as_object().is_none() {{ \
                               return ::std::result::Result::Err(\
                                 ::serde::Error::invalid_type(\"object\", value)); }} \
                             ::std::result::Result::Ok({name} {reader}) }} }}"
                    )
                }
            })
        }
        // Tuple struct.
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = count_tuple_fields(g.stream());
            if n == 0 {
                return Err("serde shim does not support empty tuple structs".into());
            }
            // Single-field tuple structs serialize as their inner value,
            // matching real serde's newtype-struct behaviour (and making
            // `#[serde(transparent)]` a no-op on them).
            if n == 1 || container.transparent {
                return Ok(match mode {
                    Mode::Serialize => format!(
                        "impl ::serde::Serialize for {name} {{ \
                           fn to_value(&self) -> ::serde::Value {{ \
                             ::serde::Serialize::to_value(&self.0) }} }}"
                    ),
                    Mode::Deserialize => format!(
                        "impl ::serde::Deserialize for {name} {{ \
                           fn from_value(value: &::serde::Value) \
                             -> ::std::result::Result<Self, ::serde::Error> {{ \
                             ::std::result::Result::Ok(\
                               {name}(::serde::Deserialize::from_value(value)?)) }} }}"
                    ),
                });
            }
            Ok(match mode {
                Mode::Serialize => {
                    let items = (0..n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "impl ::serde::Serialize for {name} {{ \
                           fn to_value(&self) -> ::serde::Value {{ \
                             ::serde::Value::Array(vec![{items}]) }} }}"
                    )
                }
                Mode::Deserialize => {
                    let items = (0..n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "impl ::serde::Deserialize for {name} {{ \
                           fn from_value(value: &::serde::Value) \
                             -> ::std::result::Result<Self, ::serde::Error> {{ \
                             let items = value.as_array().ok_or_else(|| \
                               ::serde::Error::invalid_type(\"array\", value))?; \
                             if items.len() != {n} {{ \
                               return ::std::result::Result::Err(::serde::Error::custom(\
                                 \"wrong tuple length\")); }} \
                             ::std::result::Result::Ok({name}({items})) }} }}"
                    )
                }
            })
        }
        // Unit struct.
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(match mode {
            Mode::Serialize => format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }} }}"
            ),
            Mode::Deserialize => format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_value(_value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{ \
                     ::std::result::Result::Ok({name}) }} }}"
            ),
        }),
        other => Err(format!("unexpected token in struct `{name}`: {other:?}")),
    }
}

fn expand_enum(
    tokens: &[TokenTree],
    pos: &mut usize,
    name: &str,
    container: &ContainerAttrs,
    mode: Mode,
) -> Result<String, String> {
    let rename_all = container.rename_all.as_deref();
    let group = match tokens.get(*pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => return Err(format!("expected enum body, found {other:?}")),
    };
    let variants = parse_variants(group.stream())?;
    if variants.is_empty() {
        return Err(format!("cannot derive serde traits for empty enum `{name}`"));
    }

    match mode {
        Mode::Serialize => {
            let mut arms = String::new();
            for v in &variants {
                let tag = apply_rename(&v.name, rename_all)?;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(\
                           ::std::string::String::from({tag:?})),",
                        v = v.name
                    )),
                    VariantKind::Named(fields) => {
                        let bindings =
                            fields.iter().map(|f| f.name.clone()).collect::<Vec<_>>().join(", ");
                        // Enum-level rename_all renames variant TAGS only;
                        // real serde never applies it to the fields inside a
                        // struct variant (that would be rename_all_fields).
                        let writer = named_fields_writer(fields, None, |f| f.to_string())?;
                        arms.push_str(&format!(
                            "{name}::{v} {{ {bindings} }} => {{ {writer} \
                               ::serde::Value::Object(vec![(\
                                 ::std::string::String::from({tag:?}), \
                                 ::serde::Value::Object(fields))]) }},",
                            v = v.name
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let bindings =
                            (0..*n).map(|i| format!("x{i}")).collect::<Vec<_>>().join(", ");
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(x0)".to_string()
                        } else {
                            let items = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!("::serde::Value::Array(vec![{items}])")
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({bindings}) => ::serde::Value::Object(vec![(\
                               ::std::string::String::from({tag:?}), {inner})]),",
                            v = v.name
                        ));
                    }
                }
            }
            Ok(format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} }}"
            ))
        }
        Mode::Deserialize => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in &variants {
                let tag = apply_rename(&v.name, rename_all)?;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "{tag:?} => ::std::result::Result::Ok({name}::{v}),",
                            v = v.name
                        ));
                        tagged_arms.push_str(&format!(
                            "{tag:?} => ::std::result::Result::Ok({name}::{v}),",
                            v = v.name
                        ));
                    }
                    VariantKind::Named(fields) => {
                        // As in Serialize: enum rename_all does not touch
                        // struct-variant field keys.
                        let reader = named_fields_reader(fields, None, "inner")?;
                        tagged_arms.push_str(&format!(
                            "{tag:?} => {{ \
                               if inner.as_object().is_none() {{ \
                                 return ::std::result::Result::Err(\
                                   ::serde::Error::invalid_type(\"object\", inner)); }} \
                               ::std::result::Result::Ok({name}::{v} {reader}) }},",
                            v = v.name
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        if *n == 1 {
                            tagged_arms.push_str(&format!(
                                "{tag:?} => ::std::result::Result::Ok({name}::{v}(\
                                   ::serde::Deserialize::from_value(inner)?)),",
                                v = v.name
                            ));
                        } else {
                            let items = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            tagged_arms.push_str(&format!(
                                "{tag:?} => {{ \
                                   let items = inner.as_array().ok_or_else(|| \
                                     ::serde::Error::invalid_type(\"array\", inner))?; \
                                   if items.len() != {n} {{ \
                                     return ::std::result::Result::Err(\
                                       ::serde::Error::custom(\"wrong tuple length\")); }} \
                                   ::std::result::Result::Ok({name}::{v}({items})) }},",
                                v = v.name
                            ));
                        }
                    }
                }
            }
            Ok(format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_value(value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{ \
                     match value {{ \
                       ::serde::Value::Str(s) => match s.as_str() {{ \
                         {unit_arms} \
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                           format!(\"unknown {name} variant `{{other}}`\"))), \
                       }}, \
                       ::serde::Value::Object(entries) if entries.len() == 1 => {{ \
                         let (tag, inner) = &entries[0]; \
                         let _ = inner; \
                         match tag.as_str() {{ \
                           {tagged_arms} \
                           other => ::std::result::Result::Err(::serde::Error::custom(\
                             format!(\"unknown {name} variant `{{other}}`\"))), \
                         }} \
                       }}, \
                       _ => ::std::result::Result::Err(\
                         ::serde::Error::invalid_type(\"string or single-key object\", value)), \
                     }} }} }}"
            ))
        }
    }
}
