//! Using the thermal simulator directly on a custom (non-SCC) design:
//! a two-die stack with a hotspot, demonstrating the geometry / material /
//! boundary-condition / mesh APIs the higher-level flow builds upon.
//!
//! Run with `cargo run --release --example custom_architecture`.

use vcsel_onoc::prelude::*;
use vcsel_onoc::thermal::RefineRegion;
use vcsel_onoc::units::WattsPerSquareMeterKelvin;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mm = Meters::from_millimeters;
    let um = Meters::from_micrometers;

    // 10 x 10 mm die stack: 0.5 mm substrate, 0.3 mm silicon, 20 µm BEOL,
    // 1 mm copper spreader.
    let domain = BoxRegion::with_size([Meters::ZERO; 3], [mm(10.0), mm(10.0), mm(1.82)])?;
    let mut design = Design::new(domain, Material::SILICON)?;
    design.set_boundary(
        Boundary::top(),
        BoundaryCondition::Convective {
            h: WattsPerSquareMeterKelvin::new(4_000.0),
            ambient: Celsius::new(35.0),
        },
    );

    let mut z = Meters::ZERO;
    for (name, thickness, material) in [
        ("substrate", mm(0.5), Material::SUBSTRATE),
        ("silicon", mm(0.3), Material::SILICON),
        ("BEOL", um(20.0), Material::BEOL),
        ("spreader", mm(1.0), Material::COPPER),
    ] {
        let region =
            BoxRegion::with_size([Meters::ZERO, Meters::ZERO, z], [mm(10.0), mm(10.0), thickness])?;
        design.add_block(Block::passive(name, region, material));
        z += thickness;
    }

    // A 10 W background load plus a 2 W, 1 mm² hotspot in the BEOL.
    let beol_z0 = mm(0.8);
    let beol_z1 = beol_z0 + um(20.0);
    let background =
        BoxRegion::new([Meters::ZERO, Meters::ZERO, beol_z0], [mm(10.0), mm(10.0), beol_z1])?;
    design.add_block(Block::heat_source(
        "background load",
        background,
        Material::BEOL,
        Watts::new(10.0),
    ));
    let hotspot = BoxRegion::new([mm(4.5), mm(4.5), beol_z0], [mm(5.5), mm(5.5), beol_z1])?;
    design.add_block(Block::heat_source("hotspot", hotspot, Material::BEOL, Watts::new(2.0)));

    // Coarse mesh everywhere, 100 µm cells over the hotspot.
    let fine = BoxRegion::new([mm(4.0), mm(4.0), Meters::ZERO], [mm(6.0), mm(6.0), mm(1.82)])?;
    let spec = MeshSpec::uniform(um(500.0)).with_refinement(RefineRegion::new(fine, um(100.0))?);

    println!("solving ...");
    let map = Simulator::new().solve(&design, &spec)?;

    let (hot_loc, hot_t) = map.hottest();
    println!(
        "hottest cell : {:.2} °C at ({:.2}, {:.2}) mm",
        hot_t.value(),
        hot_loc[0].as_millimeters(),
        hot_loc[1].as_millimeters()
    );
    println!("die average  : {:.2} °C", map.average().value());
    println!(
        "hotspot rise over background: {:.2} °C",
        map.average_in(&hotspot).expect("covered").value()
            - map.average_in(&background).expect("covered").value()
    );
    println!("energy-balance defect: {:.2e}", map.energy_balance_defect());
    Ok(())
}
