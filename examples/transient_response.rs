//! Transient thermal response to an activity change.
//!
//! The paper's methodology is steady-state, but its §III-B argument about
//! run-time calibration hinges on *how fast* the thermal field moves when
//! the chip activity changes. This example uses the stateful transient
//! stepper: a heater-equipped silicon island sits next to a "processing"
//! block whose power steps up mid-run, and the ring-site temperature is
//! traced through the transition — the latency window a run-time
//! calibration loop has to ride out.
//!
//! Run with `cargo run --release --example transient_response`.

use vcsel_onoc::prelude::*;
use vcsel_onoc::thermal::TransientStepper;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mm = Meters::from_millimeters;
    let domain = BoxRegion::new([Meters::ZERO; 3], [mm(4.0), mm(2.0), mm(0.5)])?;
    let mut design = Design::new(domain, Material::SILICON)?;
    design.set_boundary(
        Boundary::top(),
        BoundaryCondition::Convective {
            h: vcsel_onoc::units::WattsPerSquareMeterKelvin::new(5_000.0),
            ambient: Celsius::new(45.0),
        },
    );
    // The "chip" block (activity we will step) and a ring site with heater.
    let chip = BoxRegion::new([mm(0.5), mm(0.5), Meters::ZERO], [mm(2.0), mm(1.5), mm(0.1)])?;
    design.add_block(
        vcsel_onoc::thermal::Block::heat_source("chip", chip, Material::SILICON, Watts::new(0.5))
            .with_group("chip"),
    );
    let heater = BoxRegion::new([mm(3.0), mm(0.8), Meters::ZERO], [mm(3.4), mm(1.2), mm(0.1)])?;
    design.add_block(
        vcsel_onoc::thermal::Block::heat_source(
            "heater",
            heater,
            Material::COPPER,
            Watts::from_milliwatts(1.0),
        )
        .with_group("heater"),
    );

    let dt = 0.02; // 20 ms steps
    let mut stepper =
        TransientStepper::new(&design, &MeshSpec::uniform(mm(0.25)), Celsius::new(45.0), dt)?;
    let ring_probe = [mm(3.2), mm(1.0), mm(0.05)];

    println!("{:>8} {:>12} {:>14}", "t (s)", "activity", "ring T (°C)");
    let print_at = |stepper: &TransientStepper, label: &str| {
        let t = stepper.temperature_at(ring_probe).expect("probe inside");
        println!("{:>8.2} {:>12} {:>14.3}", stepper.time(), label, t.value());
    };

    // Phase 1: low activity (0.5x), heater steady at 1 mW.
    for k in 0..100 {
        stepper.step(&[("chip", 0.5), ("heater", 1.0)])?;
        if k % 25 == 24 {
            print_at(&stepper, "low");
        }
    }
    // Phase 2: activity doubles (the paper's "increasing activity of the
    // processing layer").
    for k in 0..150 {
        stepper.step(&[("chip", 2.0), ("heater", 1.0)])?;
        if k % 25 == 24 {
            print_at(&stepper, "HIGH");
        }
    }

    // How far did the ring drift, in wavelength terms?
    let t_final = stepper.temperature_at(ring_probe).expect("probe inside");
    println!();
    println!(
        "activity step moved the ring site to {:.2} °C; at 0.1 nm/°C that is a",
        t_final.value()
    );
    println!("resonance drift a run-time loop must chase — or a design-time heater");
    println!("budget (paper §IV-A) must absorb. An ASCII view of the final field:");
    println!();
    let slice = stepper.snapshot().slice_at(mm(0.05))?;
    print!("{}", slice.to_ascii(64));
    Ok(())
}
