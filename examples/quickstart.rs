//! Quickstart: build a (reduced) SCC system, run the thermal-aware flow at
//! one operating point, and print the paper's two headline metrics plus the
//! resulting worst-case SNR.
//!
//! Run with `cargo run --release --example quickstart`.

use vcsel_onoc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reduced 4-ONI system so the example runs in seconds; swap in
    // `SccConfig::default()` for the full 24-tile / 8-ONI case study.
    let config = SccConfig { oni_count: 4, ..SccConfig::tiny_test() };

    let flow = DesignFlow::paper();
    println!("solving the FVM response basis (a few steady-state solves) ...");
    let study = ThermalStudy::new(config, flow.simulator())?;

    // The paper's chosen operating point: P_VCSEL = 3.6 mW with the heater
    // at 30 % of it.
    let p_vcsel = Watts::from_milliwatts(3.6);
    let p_heater = Watts::from_milliwatts(1.08);
    let p_chip = Watts::new(2.0);

    let outcome = study.evaluate(p_vcsel, p_heater, p_chip)?;
    println!();
    println!("per-ONI thermals:");
    for (i, oni) in outcome.oni.iter().enumerate() {
        println!(
            "  ONI{i}: average {:.2} °C, gradient {:.3} °C (VCSELs {:.2} °C, rings {:.2} °C)",
            oni.average.value(),
            oni.gradient.value(),
            oni.vcsel_mean.value(),
            oni.ring_mean.value()
        );
    }
    println!(
        "worst intra-ONI gradient: {:.3} °C (constraint: < 1 °C, met: {})",
        outcome.worst_gradient().value(),
        outcome.meets_gradient_constraint()
    );

    let snr = flow.evaluate_snr(study.system(), &outcome, p_vcsel)?;
    println!();
    println!("worst-case SNR : {:.1} dB", snr.worst_snr_db);
    println!(
        "worst link     : signal {:.4} mW, crosstalk {:.6} mW",
        snr.worst_signal.as_milliwatts(),
        snr.worst_crosstalk.as_milliwatts()
    );
    println!("all links meet the -20 dBm sensitivity: {}", snr.all_detected);
    Ok(())
}
