//! Baseline crossbar comparison under thermal gradients.
//!
//! Section III-A quotes the insertion-loss advantage of ORNoC over the
//! Matrix, λ-router and Snake crossbars. This example extends the
//! comparison to the *thermal* axis with the path-level crossbar model:
//! the same node-temperature skew is applied to all four fabrics and the
//! worst-case SNR degradation is compared — topologies that pass more
//! rings en route lose more.
//!
//! Run with `cargo run --release --example crossbar_comparison`.

use vcsel_onoc::network::baselines::{CrossbarTopology, LossCoefficients};
use vcsel_onoc::network::{all_pairs, CrossbarInstance};
use vcsel_onoc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8;
    let pairs = all_pairs(n);
    let powers = vec![Watts::from_milliwatts(0.3); pairs.len()];
    let aligned: Vec<Celsius> = vec![Celsius::new(52.0); n];
    let skewed: Vec<Celsius> = (0..n).map(|i| Celsius::new(52.0 + 0.9 * i as f64)).collect();

    println!("{n}-node crossbars, all-to-all traffic, worst-case SNR (dB):\n");
    println!("{:>14} {:>10} {:>10} {:>12}", "topology", "aligned", "skewed", "degradation");
    for topo in CrossbarTopology::all() {
        let xbar = CrossbarInstance::new(
            topo,
            n,
            LossCoefficients::standard(),
            WavelengthGrid::paper_default(),
        )?;
        let a = xbar.analyze(&pairs, &aligned, &powers)?;
        let s = xbar.analyze(&pairs, &skewed, &powers)?;
        println!(
            "{:>14} {:>10.2} {:>10.2} {:>12.2}",
            topo.name(),
            a.worst_snr_db(),
            s.worst_snr_db(),
            a.worst_snr_db() - s.worst_snr_db()
        );
    }

    println!();
    println!("static-loss comparison (the paper's Section III-A claim):");
    let k = LossCoefficients::standard();
    let (worst, avg) = vcsel_onoc::network::baselines::ornoc_loss_reduction(16, &k)?;
    println!(
        "  ORNoC reduces worst-case loss by {:.1} % and average loss by {:.1} % at 4x4",
        100.0 * worst,
        100.0 * avg
    );
    println!("  (paper quotes 42.5 % and 38 %)");
    Ok(())
}
