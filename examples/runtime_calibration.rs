//! Run-time feedback calibration vs the paper's design-time heater.
//!
//! The paper (Section III-B) argues that run-time calibration "comes with
//! performances overhead due to algorithm execution and heating latency",
//! and instead sizes a constant heater at design time. This example puts
//! numbers on both sides: a PI feedback loop (reference [12]) locks an ONI
//! island's rings onto a target, and its settle time and steady heater
//! power are compared with the design-time constant-heater solution.
//!
//! Run with `cargo run --release --example runtime_calibration`.

use vcsel_onoc::control::{CalibrationConfig, CalibrationLoop, LumpedPlant};
use vcsel_onoc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Figure 1-b island: 4 rings + 4 VCSELs, ambient 50 °C.
    let rings = [0usize, 1, 2, 3];
    println!(
        "{:>13} {:>14} {:>18} {:>22}",
        "P_VCSEL (mW)", "settle (ms)", "heater total (mW)", "residual error (°C)"
    );

    for pv_mw in [1.0, 2.0, 3.6, 6.0] {
        let mut plant = LumpedPlant::oni_island(4, 4, Celsius::new(50.0))?;
        let mut disturbance = vec![Watts::ZERO; 8];
        for laser in disturbance.iter_mut().skip(4) {
            *laser = Watts::from_milliwatts(pv_mw);
        }
        plant.set_disturbance(&disturbance)?;

        // Aim half a degree above the hottest passive device.
        let target = CalibrationLoop::auto_target(
            &plant,
            &[Watts::ZERO; 8],
            &rings,
            TemperatureDelta::new(0.5),
        )?;
        let mut cal =
            CalibrationLoop::new(target, &rings, CalibrationConfig::oni_island_default())?;
        let outcome = cal.run(&mut plant)?;

        println!(
            "{:>13.1} {:>14.2} {:>18.3} {:>22.4}",
            pv_mw,
            outcome.settle_time_s.map_or(f64::NAN, |s| s * 1e3),
            outcome.total_heater_power.as_milliwatts(),
            outcome.residual_error_c,
        );
    }

    println!();
    println!("design-time comparison: the paper's constant heater is P_heater = 0.3 x P_VCSEL");
    println!("per ring; the feedback loop above finds the equivalent power automatically but");
    println!("pays the lock latency on every thermal transient (the paper's 'heating latency').");
    println!();
    println!("note the 6 mW row: the loop saturates its 2 mW/ring heater ceiling and never");
    println!("locks (settle = NaN) — the same scaling Figure 10 shows, where higher P_VCSEL");
    println!("demands proportionally more heater power to close the laser-ring gap.");
    Ok(())
}
