//! Standalone SNR analysis on a ring interconnect (paper Section IV-C),
//! without running a thermal simulation: sweep an imposed inter-ONI
//! temperature skew and watch the worst-case SNR collapse.
//!
//! Run with `cargo run --release --example snr_analysis`.

use vcsel_onoc::network::{assign_channels, traffic};
use vcsel_onoc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's longest case-study ring: 46.8 mm, 8 ONIs.
    let topology = RingTopology::evenly_spaced(8, Meters::from_millimeters(46.8))?;
    let analyzer = SnrAnalyzer::paper_default(WavelengthGrid::paper_default());

    // All-to-all traffic on one waveguide (the paper's interface spreads
    // this over 4; one waveguide shows the physics more clearly).
    let comms = assign_channels(&topology, &traffic::all_to_all(8))?;
    println!(
        "{} communications, {} wavelength channels (ORNoC reuse)",
        comms.len(),
        comms.iter().map(|c| c.channel() + 1).max().unwrap_or(0)
    );

    // Each ONI injects the paper's operating-point optical power.
    let vcsel = Vcsel::paper_default();
    let params = TechnologyParams::paper();

    println!();
    println!(
        "{:>14} {:>12} {:>14} {:>16}",
        "skew (°C)", "SNR (dB)", "signal (mW)", "crosstalk (µW)"
    );
    for skew in [0.0, 1.0, 2.0, 3.0, 5.0, 7.7, 10.0] {
        // Linear temperature ramp across the ring: ONI i at 50 + skew*i/7.
        let temps: Vec<Celsius> =
            (0..8).map(|i| Celsius::new(50.0 + skew * i as f64 / 7.0)).collect();
        // Injected power follows each source ONI's temperature.
        let mut op_net = Vec::new();
        for c in &comms {
            let t = temps[c.source().index()];
            let op = vcsel.operating_point_for_dissipated(Watts::from_milliwatts(3.6), t)?;
            op_net.push(Watts::new(op.optical_power.value() * params.taper_coupling));
        }
        let report = analyzer.analyze(&topology, &comms, &temps, &op_net)?;
        let worst = report.worst().expect("non-empty");
        println!(
            "{:>14.1} {:>12.1} {:>14.4} {:>16.3}",
            skew,
            report.worst_snr_db(),
            worst.signal.as_milliwatts(),
            worst.crosstalk.as_milliwatts() * 1000.0
        );
    }
    println!();
    println!(
        "a temperature difference between ONIs misaligns laser and ring \
         wavelengths (0.1 nm/°C), converting signal into crosstalk"
    );
    Ok(())
}
