//! ONoC reconfiguration: channel remapping under a skewed thermal field.
//!
//! The paper's Section II cites channel remapping [15] as a run-time
//! counter-measure to thermal drift. This example builds an 8-ONI ORNoC
//! ring, imposes a diagonal-style temperature skew, and lets the remapper
//! search for a channel assignment with a better worst-case SNR — then
//! compares against simply flattening the field with the design-time
//! methodology.
//!
//! Run with `cargo run --release --example reconfiguration`.

use vcsel_onoc::control::{remap_channels, RemapConfig};
use vcsel_onoc::network::{assign_channels, channels_needed, traffic};
use vcsel_onoc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 6;
    let topo = RingTopology::evenly_spaced(n, Meters::from_millimeters(32.4))?;
    let pairs = traffic::all_to_all(n);
    let comms = assign_channels(&topo, &pairs)?;
    let analyzer = SnrAnalyzer::paper_default(WavelengthGrid::paper_default());
    println!(
        "{} ONIs, {} communications, {} channels under first-fit",
        n,
        comms.len(),
        channels_needed(&topo, &pairs)?
    );

    // A diagonal-style skew: opposite quadrants hot/cold (paper Section V-C
    // reports 4.7 °C of inter-ONI spread for the diagonal activity, case 3).
    let temps: Vec<Celsius> = (0..n)
        .map(|i| {
            let quadrant = (4 * i) / n; // 0..=3 around the ring
            let hot = quadrant == 0 || quadrant == 2;
            Celsius::new(if hot { 58.5 } else { 54.0 })
        })
        .collect();
    let powers = vec![Watts::from_milliwatts(0.25); comms.len()];

    let before = analyzer.analyze(&topo, &comms, &temps, &powers)?;
    println!("\nworst-case SNR before remapping: {:>6.2} dB", before.worst_snr_db());

    for budget in [16, 20] {
        let config = RemapConfig { channel_budget: budget, max_moves: 25, ..Default::default() };
        let result = remap_channels(&topo, &comms, &temps, &powers, &analyzer, &config)?;
        println!(
            "remap with {budget:>2}-channel budget: {:>6.2} dB (+{:.2} dB, {} moves)",
            result.final_worst_db,
            result.gain_db(),
            result.moves
        );
    }

    println!();
    println!("the remap recovers SNR without touching the thermal field; the paper's");
    println!("methodology instead flattens the field at design time (heaters), which");
    println!("also restores intra-ONI alignment that remapping cannot fix.");
    Ok(())
}
