//! Energy-saving design-space exploration (paper Sections IV-C / V-C):
//! sweep P_VCSEL with the heater following at the 0.3 ratio, find the
//! cheapest operating point meeting an SNR target, and price the run-time
//! calibration that the design-time solution displaces.
//!
//! Run with `cargo run --release --example power_exploration`.

use vcsel_onoc::core::calibration::{heat_calibration_power, TuningCosts};
use vcsel_onoc::core::explore_vcsel_power;
use vcsel_onoc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flow = DesignFlow::paper();
    let study =
        ThermalStudy::new(SccConfig { oni_count: 4, ..SccConfig::tiny_test() }, flow.simulator())?;
    let p_chip = Watts::new(2.0);

    let sweep = [0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 3.6, 4.5, 6.0];
    let target_db = 15.0;
    let exploration = explore_vcsel_power(&flow, &study, p_chip, &sweep, 0.3, target_db)?;

    println!("SNR target: {target_db} dB (+ sensitivity + 1 °C gradient constraint)");
    println!(
        "{:>13} {:>13} {:>11} {:>13} {:>11} {:>9}",
        "P_VCSEL (mW)", "intercon (mW)", "SNR (dB)", "gradient (°C)", "OP_net (µW)", "ok"
    );
    for p in &exploration.points {
        let qualifies = p.worst_snr_db >= target_db && p.all_detected && p.worst_gradient_c < 1.0;
        println!(
            "{:>13.2} {:>13.1} {:>11.1} {:>13.3} {:>11.1} {:>9}",
            p.p_vcsel_mw,
            p.interconnect_power_w * 1e3,
            p.worst_snr_db,
            p.worst_gradient_c,
            p.mean_injected_mw * 1e3,
            if qualifies { "yes" } else { "-" }
        );
    }
    match exploration.best_point() {
        Some(best) => println!(
            "\ncheapest qualifying point: P_VCSEL = {} mW ({} mW of interconnect power)",
            best.p_vcsel_mw,
            best.interconnect_power_w * 1e3
        ),
        None => println!("\nno sampled point meets the target"),
    }

    // Price the run-time alternative: align all rings of the thermal field
    // produced at the paper's operating point.
    let outcome =
        study.evaluate(Watts::from_milliwatts(3.6), Watts::from_milliwatts(1.08), p_chip)?;
    let ring_temps: Vec<Celsius> = outcome.oni.iter().map(|o| o.ring_mean).collect();
    let budget = heat_calibration_power(&ring_temps, &TuningCosts::paper())?;
    println!(
        "\nrun-time calibration of {} ONI ring groups would cost {:.1} µW total \
         ({:.2} µW worst ring) — the design-time heater keeps this residual small",
        budget.ring_count,
        budget.total_power_w * 1e6,
        budget.worst_per_ring_w * 1e6
    );
    Ok(())
}
