//! SNR → BER → effective bandwidth: the re-emission penalty.
//!
//! Section III-C of the paper: with rising chip activity "either the
//! optical interconnect bandwidth will decrease assuming a same modulation
//! current (the SNR being lower, data will be re-emitted) or the optical
//! interconnect power consumption will increase". This example traces that
//! trade-off quantitatively using the paper's Figure 12 SNR levels.
//!
//! Run with `cargo run --release --example bandwidth_reliability`.

use vcsel_onoc::photonics::{BerModel, LinkReliability};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ber_model = BerModel::ook();
    let link = LinkReliability::paper_default(); // 12 GHz, 512-bit packets

    // The paper's Figure 12 worst-case SNRs (dB) per activity and ring length.
    let scenarios: [(&str, [f64; 3]); 3] = [
        ("uniform", [38.0, 25.0, 13.0]),
        ("diagonal", [19.0, 13.0, 10.0]),
        ("random", [20.0, 17.0, 12.0]),
    ];

    println!(
        "{:>9} {:>8} {:>10} {:>12} {:>14} {:>16}",
        "activity", "ring", "SNR (dB)", "BER", "re-emissions", "goodput (Gb/s)"
    );
    for (activity, snrs) in &scenarios {
        for (len_mm, snr_db) in [18.0, 32.4, 46.8].iter().zip(snrs) {
            let ber = ber_model.ber_from_snr_db(*snr_db);
            let emissions = link.expected_emissions(ber);
            let goodput = link.effective_bandwidth_hz(ber) / 1e9;
            println!(
                "{:>9} {:>6.1}mm {:>10.1} {:>12.2e} {:>14.4} {:>16.3}",
                activity, len_mm, snr_db, ber, emissions, goodput
            );
        }
    }

    println!();
    let required = ber_model.required_snr_db(1e-9)?;
    println!("SNR required for the classic 1e-9 BER target: {required:.2} dB");
    println!("-> every Figure 12 point except diagonal/46.8mm and random/46.8mm clears it");
    println!("   with margin; the 10-13 dB points pay a visible re-emission penalty.");
    Ok(())
}
