//! Heater design-space exploration (the paper's Figure 9-b methodology):
//! sweep the MR heater power at several P_VCSEL values and find the ratio
//! minimizing the intra-ONI temperature gradient.
//!
//! Run with `cargo run --release --example heater_exploration`.

use vcsel_onoc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flow = DesignFlow::paper();
    let study = ThermalStudy::new(SccConfig::tiny_test(), flow.simulator())?;
    let p_chip = Watts::new(2.0);

    println!(
        "{:>13} {:>18} {:>20} {:>16}",
        "P_VCSEL (mW)", "optimal ratio", "gradient @opt (°C)", "w/o heater (°C)"
    );
    for pv_mw in [1.0, 2.0, 4.0, 6.0] {
        let p_vcsel = Watts::from_milliwatts(pv_mw);
        let exploration = study.explore_heater(p_vcsel, p_chip, 1.0, 9)?;
        let without = study.evaluate(p_vcsel, Watts::ZERO, p_chip)?;
        println!(
            "{:>13.1} {:>18.2} {:>20.3} {:>16.3}",
            pv_mw,
            exploration.optimal_ratio,
            exploration.optimal_gradient.value(),
            without.worst_gradient().value()
        );
    }
    println!();
    println!("paper: \"the smallest gradient is obtained for P_heater = 0.3 x P_VCSEL\"");

    // Show the full curve for one P_VCSEL, like one series of Figure 9-b.
    let p_vcsel = Watts::from_milliwatts(4.0);
    let exploration = study.explore_heater(p_vcsel, p_chip, 1.0, 9)?;
    println!();
    println!("gradient vs P_heater at P_VCSEL = 4 mW:");
    for point in &exploration.curve {
        println!(
            "  P_heater = {:>5.2} mW -> gradient {:>6.3} °C (mean ONI {:.2} °C)",
            point.p_heater.as_milliwatts(),
            point.worst_gradient.value(),
            point.mean_average.value()
        );
    }
    Ok(())
}
