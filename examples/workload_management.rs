//! Run-time workload management: DVFS, migration and job allocation.
//!
//! The run-time alternatives of the paper's Section II, demonstrated side
//! by side on a 24-tile SCC-like influence model: a skewed workload heats
//! one corner; DVFS caps the peak at a performance cost, migration evens
//! the field out for free (if work may move), and thermally-aware job
//! allocation avoids creating the skew in the first place.
//!
//! Run with `cargo run --release --example workload_management`.

use vcsel_onoc::control::{
    allocate_jobs, dvfs_cap, migrate_workload, AllocationPolicy, InfluenceModel, Job,
    MigrationConfig,
};
use vcsel_onoc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 6x4 tile grid (the SCC), ONIs at the four die corners.
    let pitch = 4.0; // mm
    let tiles: Vec<[Meters; 2]> = (0..24)
        .map(|k| {
            let (r, c) = (k / 6, k % 6);
            [Meters::from_millimeters(pitch * c as f64), Meters::from_millimeters(pitch * r as f64)]
        })
        .collect();
    let onis: Vec<[Meters; 2]> = [(0.0, 0.0), (20.0, 0.0), (0.0, 12.0), (20.0, 12.0)]
        .iter()
        .map(|&(x, y)| [Meters::from_millimeters(x), Meters::from_millimeters(y)])
        .collect();
    let model = InfluenceModel::from_geometry(
        &onis,
        &tiles,
        Celsius::new(45.0),
        0.4,
        Meters::from_millimeters(3.0),
    )?;

    // Skewed workload: 25 W crammed into the lower-left 2x2 tiles.
    let mut powers = vec![Watts::ZERO; 24];
    for &t in &[0usize, 1, 6, 7] {
        powers[t] = Watts::new(6.25);
    }
    let spread0 = model.spread(&powers)?;
    let peak0 = model.peak(&powers)?;
    println!(
        "skewed load   : peak {:.2} °C, inter-ONI spread {:.2} °C",
        peak0.value(),
        spread0.value()
    );

    // 1. DVFS: cap the peak 2 °C below where it is.
    let limit = Celsius::new(peak0.value() - 2.0);
    let dvfs = dvfs_cap(&model, &powers, limit)?;
    println!(
        "DVFS to {:.2} °C: power x{:.2}, frequency x{:.2} ({:.1} % performance lost)",
        limit.value(),
        dvfs.power_scale,
        dvfs.frequency_scale,
        100.0 * dvfs.performance_loss()
    );

    // 2. Migration: move work instead of slowing it.
    let cfg = MigrationConfig { tile_cap: Watts::new(8.0), ..MigrationConfig::default() };
    let migrated = migrate_workload(&model, &powers, &cfg)?;
    println!(
        "migration     : spread {:.2} °C -> {:.3} °C in {} moves (no performance loss)",
        migrated.initial_spread.value(),
        migrated.final_spread.value(),
        migrated.moves
    );

    // 3. Allocation: place 4 x 6.25 W jobs thermally-aware from the start.
    let jobs: Vec<Job> = (0..4).map(|id| Job { id, power: Watts::new(6.25) }).collect();
    let naive = allocate_jobs(&model, &jobs, Watts::new(8.0), AllocationPolicy::RowMajor)?;
    let smart = allocate_jobs(&model, &jobs, Watts::new(8.0), AllocationPolicy::ThermalAware)?;
    println!(
        "allocation    : row-major spread {:.2} °C, thermal-aware spread {:.2} °C (tiles {:?})",
        naive.spread.value(),
        smart.spread.value(),
        smart.assignment
    );

    println!();
    println!("inter-ONI spread converts to wavelength misalignment at 0.1 nm/°C; the");
    println!("paper's design-time heaters attack the *intra*-ONI gradient instead —");
    println!("the two mechanisms are complementary.");
    Ok(())
}
